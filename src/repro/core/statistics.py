"""Operand case statistics used to synthesise steering strategies.

The paper's LUT contents and swap-case choice are both derived from two
measured distributions:

* Table 1 — frequency of each (case, commutativity) combination among
  executed operations of an FU class, plus per-operand bit
  probabilities;
* Table 2 — how many modules of the class are used per busy cycle.

:class:`CaseStatistics` packages the operational parts of those tables.
Instances can be built from the paper's published numbers (for exact
fidelity) or measured from any workload stream via
:class:`repro.analysis.bit_patterns.BitPatternCollector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..isa.instructions import FUClass
from .info_bits import CASES


@dataclass(frozen=True)
class CaseStatistics:
    """Case and module-usage distributions for one FU class.

    ``case_comm_freq`` maps ``(case, commutative)`` to a fraction of all
    executed operations of the class (the eight rows of Table 1);
    ``usage`` maps ``Num(I)`` to the fraction of busy cycles issuing
    that many operations (one row of Table 2).
    """

    fu_class: FUClass
    case_comm_freq: Mapping[Tuple[int, bool], float]
    usage: Mapping[int, float]

    def __post_init__(self) -> None:
        total = sum(self.case_comm_freq.values())
        if total and abs(total - 1.0) > 0.02:
            raise ValueError(f"case frequencies sum to {total}, expected ~1")
        usage_total = sum(self.usage.values())
        if usage_total and abs(usage_total - 1.0) > 0.02:
            raise ValueError(f"usage fractions sum to {usage_total}, expected ~1")

    def case_freq(self, case: int) -> float:
        """Total frequency of a case, commutativity rows combined."""
        return (self.case_comm_freq.get((case, True), 0.0)
                + self.case_comm_freq.get((case, False), 0.0))

    def case_distribution(self) -> Dict[int, float]:
        """Normalised case probabilities over the four cases."""
        raw = {case: self.case_freq(case) for case in CASES}
        total = sum(raw.values())
        if not total:
            return {case: 0.25 for case in CASES}
        return {case: value / total for case, value in raw.items()}

    def noncommutative_freq(self, case: int) -> float:
        """Frequency of non-commutative operations with this case."""
        return self.case_comm_freq.get((case, False), 0.0)

    def least_case(self) -> int:
        """The least frequent case — used to pad short LUT vectors."""
        distribution = self.case_distribution()
        return min(CASES, key=lambda case: (distribution[case], case))

    def usage_distribution(self, max_issue: int) -> Dict[int, float]:
        """Usage distribution truncated/normalised to ``1..max_issue``."""
        raw = {n: self.usage.get(n, 0.0) for n in range(1, max_issue + 1)}
        overflow = sum(fraction for n, fraction in self.usage.items()
                       if n > max_issue)
        raw[max_issue] += overflow
        total = sum(raw.values())
        if not total:
            return {1: 1.0, **{n: 0.0 for n in range(2, max_issue + 1)}}
        return {n: value / total for n, value in raw.items()}

    def expected_issue_width(self) -> float:
        """E[Num(I)] over busy cycles."""
        return sum(n * fraction for n, fraction in self.usage.items())


def _freq_table(percentages: Mapping[Tuple[int, bool], float]):
    return {key: value / 100.0 for key, value in percentages.items()}


# --- the paper's published distributions (Tables 1 and 2) --------------------

PAPER_IALU_CASE_FREQ = _freq_table({
    (0b00, True): 40.11, (0b00, False): 29.38,
    (0b01, True): 9.56, (0b01, False): 0.58,
    (0b10, True): 17.07, (0b10, False): 1.51,
    (0b11, True): 1.52, (0b11, False): 0.27,
})

PAPER_FPAU_CASE_FREQ = _freq_table({
    (0b00, True): 16.79, (0b00, False): 10.28,
    (0b01, True): 15.64, (0b01, False): 4.90,
    (0b10, True): 5.92, (0b10, False): 4.22,
    (0b11, True): 31.00, (0b11, False): 11.25,
})

PAPER_IALU_USAGE = {1: 0.403, 2: 0.362, 3: 0.194, 4: 0.042}
PAPER_FPAU_USAGE = {1: 0.902, 2: 0.092, 3: 0.005, 4: 0.001}


def paper_statistics(fu_class: FUClass) -> CaseStatistics:
    """Table 1 / Table 2 statistics as published in the paper."""
    if fu_class is FUClass.IALU:
        return CaseStatistics(fu_class, PAPER_IALU_CASE_FREQ, PAPER_IALU_USAGE)
    if fu_class is FUClass.FPAU:
        return CaseStatistics(fu_class, PAPER_FPAU_CASE_FREQ, PAPER_FPAU_USAGE)
    raise ValueError(f"the paper publishes statistics for IALU and FPAU only,"
                     f" not {fu_class}")
