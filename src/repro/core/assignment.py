"""Optimal instruction-to-module assignment (section 4.1, Figure 2).

Given the operations issued this cycle and each module's latched
previous inputs, build the cost matrix of Figure 2 — the Hamming
distance of each operation's operands to each module's previous
operands, taking the cheaper operand order for commutative operations —
then pick the assignment minimising total cost.

The paper notes this is too expensive for hardware (it is the *upper
bound* labelled "Full Ham" in Figure 4); here it is also reused, with a
1-bit operand summary, for the "1-bit Ham" policy.  Matching is exact:
brute force over permutations for small module counts, Hungarian
(scipy) beyond that.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..cpu.trace import MicroOp

# cost_fn(op1, op2, prev1, prev2) -> non-negative cost
CostFn = Callable[[int, int, int, int], float]

_BRUTE_FORCE_LIMIT = 6


@dataclass(frozen=True)
class Assignment:
    """Result of assigning one cycle's operations to modules.

    ``modules[k]`` is the module index for operation ``k``;
    ``swapped[k]`` says whether its operands should be exchanged before
    driving the module; ``total_cost`` is the matrix cost of the chosen
    assignment.
    """

    modules: Tuple[int, ...]
    swapped: Tuple[bool, ...]
    total_cost: float

    def __post_init__(self) -> None:
        if len(set(self.modules)) != len(self.modules):
            raise ValueError("assignment must map operations to distinct modules")


def cost_matrix(ops: Sequence[MicroOp],
                module_inputs: Sequence[Tuple[int, int]],
                cost_fn: CostFn,
                allow_swap: bool = True) -> Tuple[List[List[float]], List[List[bool]]]:
    """Figure 2: cost of every (operation, module) pairing.

    Returns ``(costs, swaps)`` where ``costs[k][m]`` is the best cost of
    running operation ``k`` on module ``m`` and ``swaps[k][m]`` records
    whether that best cost requires swapping the operands (only ever
    True for hardware-swappable operations).
    """
    costs: List[List[float]] = []
    swaps: List[List[bool]] = []
    for op in ops:
        op_costs: List[float] = []
        op_swaps: List[bool] = []
        for prev1, prev2 in module_inputs:
            direct = cost_fn(op.op1, op.op2, prev1, prev2)
            if allow_swap and op.hardware_swappable:
                exchanged = cost_fn(op.op2, op.op1, prev1, prev2)
                if exchanged < direct:
                    op_costs.append(exchanged)
                    op_swaps.append(True)
                    continue
            op_costs.append(direct)
            op_swaps.append(False)
        costs.append(op_costs)
        swaps.append(op_swaps)
    return costs, swaps


def solve(costs: Sequence[Sequence[float]]) -> Tuple[Tuple[int, ...], float]:
    """Minimum-cost injective assignment of rows (ops) to columns (modules).

    Requires ``len(costs) <= len(costs[0])``.  Ties break toward the
    lexicographically smallest module tuple, making results deterministic.
    """
    num_ops = len(costs)
    if num_ops == 0:
        return (), 0.0
    num_modules = len(costs[0])
    if num_ops > num_modules:
        raise ValueError(
            f"cannot place {num_ops} operations on {num_modules} modules")
    if num_modules <= _BRUTE_FORCE_LIMIT:
        return _solve_brute(costs, num_ops, num_modules)
    return _solve_hungarian(costs)


def _solve_brute(costs, num_ops: int, num_modules: int):
    best_total: Optional[float] = None
    best: Optional[Tuple[int, ...]] = None
    for modules in itertools.permutations(range(num_modules), num_ops):
        total = sum(costs[k][m] for k, m in enumerate(modules))
        if best_total is None or total < best_total:
            best_total = total
            best = modules
    assert best is not None
    return best, best_total


def _solve_hungarian(costs):
    import numpy as np
    from scipy.optimize import linear_sum_assignment

    matrix = np.asarray(costs, dtype=float)
    rows, cols = linear_sum_assignment(matrix)
    modules = tuple(int(cols[list(rows).index(k)]) for k in range(len(costs)))
    total = float(matrix[rows, cols].sum())
    return modules, total


def optimal_assignment(ops: Sequence[MicroOp],
                       module_inputs: Sequence[Tuple[int, int]],
                       cost_fn: CostFn,
                       allow_swap: bool = True) -> Assignment:
    """Best assignment (and per-op swap choices) for one cycle."""
    costs, swaps = cost_matrix(ops, module_inputs, cost_fn, allow_swap)
    modules, total = solve(costs)
    swapped = tuple(swaps[k][m] for k, m in enumerate(modules))
    return Assignment(modules=modules, swapped=swapped, total_cost=total)
