"""Steering policies and the stream evaluator (sections 4.1-4.3).

A *policy* decides, for the operations one cycle issues to an FU class,
which module each operation drives and whether its operands are swapped
by the router.  The paper's candidates, in decreasing implementation
cost:

* :class:`FullHammingPolicy` — the optimal assignment of section 4.1
  ("Full Ham" in Figure 4): full-width Hamming cost matrix against each
  module's latched inputs, exact matching.
* :class:`OneBitHammingPolicy` — the same matrix computed only on the
  information bits ("1-bit Ham"): the upper bound of any scheme that
  sees one bit per operand.
* :class:`LUTPolicy` — the actual proposal (section 4.3): a stateless
  lookup keyed by the concatenated cases of the first few operations.
* :class:`OriginalPolicy` — first-come-first-serve, how existing
  superscalars route ("Original").

:class:`PolicyEvaluator` subscribes to a simulator's issue stream and
accumulates each policy's switched-bit count through a
:class:`~repro.core.power.FUPowerModel`, so arbitrarily many policies
can be scored in a single simulation pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from ..cpu.trace import IssueGroup, MicroOp
from ..isa import encoding
from ..isa.encoding import bit_count as _bit_count
from ..isa.instructions import FUClass
from ..telemetry.session import TelemetrySession
from .assignment import Assignment, optimal_assignment
from .info_bits import InfoBitScheme, case_of, scheme_for
from .lut import SteeringLUT, build_lut
from .power import FUPowerModel, operand_width
from .registry import (PolicyFamily, PolicyRequest, REGISTRY, exact_name,
                       int_suffix)
from .statistics import CaseStatistics
from .swapping import HardwareSwapper


class SteeringPolicy(Protocol):
    """Maps one cycle's operations onto distinct modules.

    When a cycle's issue group is wider than the module count the
    policy assigns only the first ``power.num_modules`` operations — a
    router with M ports physically sees at most M operations — and the
    returned :class:`~repro.core.assignment.Assignment` is
    correspondingly shorter than ``ops``.  Consumers pair operations
    and modules positionally (``zip`` truncates at the assignment).
    """

    name: str

    def assign(self, ops: Sequence[MicroOp],
               power: FUPowerModel) -> Assignment:
        """Choose modules (and router swaps) for this cycle's ops."""
        ...


@dataclass
class OriginalPolicy:
    """First-come-first-serve: operation k drives module k.

    This is how a conventional superscalar fills its functional units
    and is the baseline all reductions in Figure 4 are measured against.
    """

    name: str = "original"
    # assignment depends only on the ops, never on latched module state;
    # SharedEvaluationCoordinator may compute it once per cycle
    power_independent = True

    def __post_init__(self) -> None:
        # the assignment depends only on the width, so the (frozen)
        # Assignment objects can be reused across cycles
        self._memo: Dict[int, Assignment] = {}

    def assign(self, ops: Sequence[MicroOp], power: FUPowerModel) -> Assignment:
        count = min(len(ops), power.num_modules)
        cached = self._memo.get(count)
        if cached is None:
            cached = Assignment(modules=tuple(range(count)),
                                swapped=(False,) * count, total_cost=0.0)
            self._memo[count] = cached
        return cached


@dataclass
class RoundRobinPolicy:
    """Ablation baseline: rotate the starting module every cycle."""

    name: str = "round-robin"
    _next: int = 0
    power_independent = True

    def assign(self, ops: Sequence[MicroOp], power: FUPowerModel) -> Assignment:
        count = power.num_modules
        take = min(len(ops), count)
        modules = tuple((self._next + k) % count for k in range(take))
        self._next = (self._next + take) % count
        return Assignment(modules=modules, swapped=(False,) * take,
                          total_cost=0.0)


@dataclass
class FullHammingPolicy:
    """Optimal full-width Hamming assignment (cost-prohibitive bound)."""

    allow_swap: bool = False
    name: str = "full-ham"
    power_independent = False

    def __post_init__(self) -> None:
        if self.allow_swap:
            self.name = "full-ham+swap"
        # the operand mask and cost closure are per-FU-class constants;
        # build them on first use instead of once per cycle
        self._cost_fn = None
        self._cost_class: Optional[FUClass] = None

    def _cost_for(self, fu_class: FUClass):
        if self._cost_class is not fu_class:
            mask = (1 << operand_width(fu_class)) - 1

            def cost(op1: int, op2: int, prev1: int, prev2: int,
                     _bc=_bit_count, _mask=mask) -> int:
                return (_bc((op1 ^ prev1) & _mask)
                        + _bc((op2 ^ prev2) & _mask))

            self._cost_fn = cost
            self._cost_class = fu_class
        return self._cost_fn

    def assign(self, ops: Sequence[MicroOp], power: FUPowerModel) -> Assignment:
        if len(ops) > power.num_modules:
            ops = ops[:power.num_modules]
        return optimal_assignment(ops, power.all_module_inputs(),
                                  self._cost_for(power.fu_class),
                                  allow_swap=self.allow_swap)


@dataclass
class OneBitHammingPolicy:
    """Optimal assignment seeing only information bits (section 4.2)."""

    scheme: InfoBitScheme
    allow_swap: bool = False
    name: str = "1bit-ham"
    power_independent = False

    def __post_init__(self) -> None:
        if self.allow_swap:
            self.name = "1bit-ham+swap"
        extract = self.scheme.extract

        def cost(op1: int, op2: int, prev1: int, prev2: int) -> int:
            return (abs(extract(op1) - extract(prev1))
                    + abs(extract(op2) - extract(prev2)))

        self._cost_fn = cost

    def assign(self, ops: Sequence[MicroOp], power: FUPowerModel) -> Assignment:
        if len(ops) > power.num_modules:
            ops = ops[:power.num_modules]
        return optimal_assignment(ops, power.all_module_inputs(),
                                  self._cost_fn,
                                  allow_swap=self.allow_swap)


@dataclass
class LUTPolicy:
    """The paper's proposal: stateless LUT steering (section 4.3).

    The first ``lut.vector_ops`` operations are steered by the table;
    any additional operations (issue wider than the vector) fall back to
    the remaining modules first-come-first-serve, mirroring a router
    whose vector simply does not see them.
    """

    lut: SteeringLUT
    scheme: InfoBitScheme
    name: str = ""
    power_independent = True

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"lut-{self.lut.vector_bits}bit"
        # the table is stateless: identical (cases, width, module count)
        # always steers identically, so the frozen Assignment objects
        # can be memoised — the case alphabet is tiny (4^vector_ops keys)
        self._memo: Dict[Tuple[Tuple[int, ...], int, int], Assignment] = {}
        self._case_fn = self.scheme.pair_case or self.scheme.case_of
        self._vector_ops = self.lut.vector_ops

    def assign(self, ops: Sequence[MicroOp], power: FUPowerModel) -> Assignment:
        case = self._case_fn
        cases = tuple([case(op.op1, op.op2 if op.has_two else 0)
                       for op in ops[:self._vector_ops]])
        return self._assign_cases(cases, len(ops), power.num_modules)

    def _assign_cases(self, cases: Tuple[int, ...], length: int,
                      count: int) -> Assignment:
        """Steer from precomputed cases (the columnar kernels call this
        directly, so table semantics live in exactly one place)."""
        key = (cases, length, count)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        steered = list(self.lut.lookup(cases))[:count]
        # a table built for a wider machine can emit module indices this
        # power model does not have; remap those onto unused modules,
        # exactly like overflow operations
        valid = {m for m in steered if m < count}
        spare = iter(m for m in range(count) if m not in valid)
        steered = [m if m < count else next(spare) for m in steered]
        free = [m for m in range(count) if m not in steered]
        modules = tuple((steered + free)[:length])
        assignment = Assignment(modules=modules,
                                swapped=(False,) * len(modules),
                                total_cost=0.0)
        self._memo[key] = assignment
        return assignment


@dataclass
class EvaluationTotals:
    """What one policy accumulated over a stream."""

    policy: str
    fu_class: FUClass
    switched_bits: int
    operations: int
    cycles_seen: int
    hardware_swaps: int

    @property
    def bits_per_operation(self) -> float:
        if not self.operations:
            return 0.0
        return self.switched_bits / self.operations

    def reduction_vs(self, baseline: "EvaluationTotals") -> float:
        """Fractional energy reduction relative to a baseline run.

        A zero-bit baseline is only meaningful when this run also saw
        zero switched bits (an empty stream: 0% reduction).  A baseline
        that switched nothing while this policy switched something means
        the two totals do not describe the same stream — silently
        returning 0.0 here used to mask exactly that mistake.
        """
        if not baseline.switched_bits:
            if not self.switched_bits:
                return 0.0
            raise ValueError(
                f"baseline '{baseline.policy}' saw zero switched bits but"
                f" '{self.policy}' saw {self.switched_bits}; the totals"
                " were not accumulated over the same stream")
        return 1.0 - self.switched_bits / baseline.switched_bits


class PolicyEvaluator:
    """Issue-stream listener scoring one (policy, swapper) combination.

    Wrong-path accounting: the simulator marks a ``MicroOp`` as
    ``speculative`` only retroactively, when the mispredicted branch
    resolves and the flush squashes it — at issue time every op looks
    correct-path.  An evaluator with ``include_speculative=False``
    therefore cannot filter the live stream; it *defers* accounting,
    buffering groups and charging them once the flags are final (any
    time after the run completes — :meth:`totals` drains the buffer
    automatically, or call :meth:`finalize` explicitly).  Inclusive
    evaluators stay fully streaming, which is also the correct hardware
    model: the router really drives wrong-path operations.
    """

    def __init__(self, fu_class: FUClass, num_modules: int,
                 policy: SteeringPolicy,
                 scheme: Optional[InfoBitScheme] = None,
                 pre_swapper: Optional[HardwareSwapper] = None,
                 include_speculative: bool = True,
                 fault_injector=None,
                 telemetry: Optional[TelemetrySession] = None):
        self.fu_class = fu_class
        self.policy = policy
        self.scheme = scheme or scheme_for(fu_class)
        self.pre_swapper = pre_swapper
        self.include_speculative = include_speculative
        # optional transient-upset model (repro.runner.faults): corrupts
        # only the *policy's view* of the operands; the power model
        # still charges the true bit images, so what degrades is the
        # steering decision, not the accounting
        self.fault_injector = fault_injector
        self.power = FUPowerModel(fu_class, num_modules)
        self.cycles_seen = 0
        # deferred groups awaiting final wrong-path flags; None for
        # inclusive (streaming) evaluators
        self._deferred: Optional[List[IssueGroup]] = (
            None if include_speculative else [])
        self.telemetry: Optional[TelemetrySession] = None
        if telemetry is not None and telemetry.enabled:
            self._init_telemetry(telemetry)

    def _init_telemetry(self, telemetry: TelemetrySession) -> None:
        """Prebind the per-evaluator tallies and the session collector.

        The hot per-cycle path touches only plain ints and one flat
        list (``_case_counts``) — no registry objects, no method
        dispatch per operation.  Everything the registry or sampler
        wants (case mix, swaps, per-module switched-bit breakdown) is
        *read* lazily through a session collector at sample points and
        at summary time.
        """
        self.telemetry = telemetry
        prefix = f"steer.{self.fu_class.value}.{self.label}"
        self._case_fn = self.scheme.pair_case or self.scheme.case_of
        self._case_counts = [0, 0, 0, 0]
        self._ops_seen = 0
        self._swaps_seen = 0
        self._trace = telemetry.tracer
        power = self.power
        power.enable_module_tracking()

        def collect(prefix=prefix, power=power) -> Dict[str, int]:
            counts = self._case_counts
            counters = {
                f"{prefix}.ops": self._ops_seen,
                f"{prefix}.swaps": self._swaps_seen,
                f"{prefix}.case00": counts[0],
                f"{prefix}.case01": counts[1],
                f"{prefix}.case10": counts[2],
                f"{prefix}.case11": counts[3],
                f"{prefix}.bits": power.switched_bits,
            }
            for index, bits in enumerate(power.module_switched_bits):
                counters[f"{prefix}.module.{index}.bits"] = bits
                counters[f"{prefix}.module.{index}.ops"] = \
                    power.module_operations[index]
            return counters

        telemetry.add_collector(collect)

    def _telemetry_record(self, ops: Sequence[MicroOp],
                          assignment: Assignment, cycle: int) -> None:
        """Per-cycle steering telemetry: case mix, swaps, trace event."""
        modules = assignment.modules
        if len(ops) > len(modules):
            ops = ops[:len(modules)]
        case = self._case_fn
        counts = self._case_counts
        for op in ops:
            counts[case(op.op1, op.op2 if op.has_two else 0)] += 1
        self._ops_seen += len(ops)
        swapped = assignment.swapped
        if True in swapped:
            self._swaps_seen += swapped.count(True)
        if self._trace is not None:
            self._trace.module_assigned(cycle, self.fu_class.value,
                                        self.label, modules,
                                        assignment.swapped)

    def __call__(self, group: IssueGroup) -> None:
        if group.fu_class is not self.fu_class:
            return
        if self._deferred is not None:
            self._deferred.append(group)
            return
        self._account_ops(group.ops, group.cycle)

    def _account_ops(self, ops: Sequence[MicroOp],
                     cycle: int = 0) -> None:
        """Clamp, pre-swap, assign, and charge one cycle's operations."""
        if not ops:
            return
        if len(ops) > self.power.num_modules:
            # a router with M ports sees at most M operations per cycle
            ops = ops[:self.power.num_modules]
        if self.pre_swapper is not None:
            ops = [self.pre_swapper(op) for op in ops]
        view = ops
        if self.fault_injector is not None:
            view = self.fault_injector.corrupt_view(ops, self.fu_class)
        self._apply(ops, self.policy.assign(view, self.power), cycle)

    def _apply(self, ops: Sequence[MicroOp], assignment: Assignment,
               cycle: int = 0) -> None:
        self.cycles_seen += 1
        self.power.account_group(ops, assignment.modules,
                                 assignment.swapped)
        if self.telemetry is not None:
            self._telemetry_record(ops, assignment, cycle)

    def finalize(self) -> None:
        """Account any deferred groups using their final wrong-path
        flags.  Safe to call more than once; a no-op for inclusive
        evaluators."""
        if not self._deferred:
            return
        pending, self._deferred = self._deferred, []
        for group in pending:
            self._account_ops(
                [op for op in group.ops if not op.speculative],
                group.cycle)

    @property
    def label(self) -> str:
        suffix = "+hwswap" if self.pre_swapper is not None else ""
        return f"{self.policy.name}{suffix}"

    def totals(self) -> EvaluationTotals:
        self.finalize()
        swaps = (self.pre_swapper.swaps_performed
                 if self.pre_swapper is not None else 0)
        return EvaluationTotals(policy=self.label, fu_class=self.fu_class,
                                switched_bits=self.power.switched_bits,
                                operations=self.power.operations,
                                cycles_seen=self.cycles_seen,
                                hardware_swaps=swaps)


class SharedEvaluationCoordinator:
    """Fan one issue stream into many evaluators of one FU class,
    computing shared per-cycle work exactly once.

    Scoring N policies in one simulation pass repeats three pieces of
    work N times when the evaluators subscribe independently: the
    issue-width clamp, each pre-swapper's swapped operand list, and —
    for policies whose assignment does not read the power model's
    latched inputs (``power_independent``: Original, round-robin, LUT)
    — the module assignment itself.  The coordinator hoists all three
    into per-cycle caches.  Power-*dependent* policies (the Hamming
    matchers) still compute their own cost matrices, necessarily: each
    evaluator's matrix is built against its own module history.

    A pre-swapper or power-independent policy *instance* shared by
    several evaluators is invoked once per cycle, so its internal state
    (swap counters, round-robin rotation) advances once — matching one
    piece of hardware feeding several accounting models.
    """

    def __init__(self, fu_class: FUClass):
        self.fu_class = fu_class
        self.evaluators: List[PolicyEvaluator] = []
        # dispatch plan, rebuilt on add(): per-evaluator static facts,
        # plus whether any swapper / power-independent policy *instance*
        # is shared between evaluators (the only case where per-cycle
        # memo dicts are needed to keep "invoked once per cycle" true —
        # distinct instances just compute their own work as usual)
        self._plan: List[Tuple[PolicyEvaluator, FUPowerModel,
                               Optional[HardwareSwapper], SteeringPolicy,
                               bool, object]] = []
        self._shared_swappers = False
        self._shared_policies = False

    def add(self, evaluator: PolicyEvaluator) -> PolicyEvaluator:
        """Register an evaluator; returns it for chaining."""
        if evaluator.fu_class is not self.fu_class:
            raise ValueError(
                f"evaluator is for {evaluator.fu_class}, coordinator "
                f"for {self.fu_class}")
        self.evaluators.append(evaluator)
        self._plan.append((evaluator, evaluator.power,
                           evaluator.pre_swapper, evaluator.policy,
                           getattr(evaluator.policy, "power_independent",
                                   False),
                           evaluator.fault_injector))
        swappers = [id(ev.pre_swapper) for ev in self.evaluators
                    if ev.pre_swapper is not None]
        self._shared_swappers = len(swappers) != len(set(swappers))
        independents = [id(ev.policy) for ev in self.evaluators
                        if getattr(ev.policy, "power_independent", False)]
        self._shared_policies = len(independents) != len(set(independents))
        return evaluator

    def __call__(self, group: IssueGroup) -> None:
        if group.fu_class is not self.fu_class:
            return
        base_ops = group.ops
        base_len = len(base_ops)
        # the clamp is pure, so a one-entry cache (the common case: all
        # evaluators model the same module count) needs no dict
        clamp_count = -1
        clamp_ops: Sequence[MicroOp] = base_ops
        swap_cache: Optional[Dict[Tuple[int, int], List[MicroOp]]] = (
            {} if self._shared_swappers else None)
        assign_cache: Optional[Dict[Tuple[int, int, int], Assignment]] = (
            {} if self._shared_policies else None)
        for ev, power, swapper, policy, independent, injector in self._plan:
            deferred = ev._deferred
            if deferred is not None:
                deferred.append(group)
                continue
            count = power.num_modules
            if count != clamp_count:
                clamp_ops = (base_ops if base_len <= count
                             else base_ops[:count])
                clamp_count = count
            ops = clamp_ops
            if not ops:
                continue
            if swapper is not None:
                if swap_cache is None:
                    ops = [swapper(op) for op in ops]
                else:
                    key = (id(swapper), count)
                    swapped = swap_cache.get(key)
                    if swapped is None:
                        swapped = [swapper(op) for op in ops]
                        swap_cache[key] = swapped
                    ops = swapped
            view = ops
            if injector is not None:
                # faulted evaluators never share assignments: each
                # injector corrupts its own view of the cycle
                view = injector.corrupt_view(ops, self.fu_class)
            if independent and assign_cache is not None and injector is None:
                akey = (id(policy), id(ops), count)
                assignment = assign_cache.get(akey)
                if assignment is None:
                    assignment = policy.assign(ops, power)
                    assign_cache[akey] = assignment
            else:
                assignment = policy.assign(view, power)
            # _apply, inlined: this is once per evaluator per cycle
            ev.cycles_seen += 1
            power.account_group(ops, assignment.modules,
                                assignment.swapped)
            if ev.telemetry is not None:
                ev._telemetry_record(ops, assignment, group.cycle)

    def finalize(self) -> None:
        """Drain every deferred (wrong-path-excluding) evaluator."""
        for ev in self.evaluators:
            ev.finalize()

    def totals(self) -> List[EvaluationTotals]:
        """Totals of every registered evaluator, in registration order."""
        return [ev.totals() for ev in self.evaluators]


def make_policy(kind: str, fu_class: FUClass, num_modules: int,
                stats: Optional[CaseStatistics] = None,
                scheme: Optional[InfoBitScheme] = None,
                allow_swap: bool = False) -> SteeringPolicy:
    """Factory covering every registered policy family.

    ``kind`` is any kind the :data:`~repro.core.registry.REGISTRY`
    resolves — the paper's menu (``original``, ``round-robin``,
    ``full-ham``, ``1bit-ham``, ``lut-<bits>``) plus any family
    registered since (e.g. ``bdd-<bits>``).  Unknown or malformed
    kinds raise a :class:`~repro.core.registry.PolicyNameError`
    (a ``ValueError``) naming every registered kind.
    """
    scheme = scheme or scheme_for(fu_class)
    return REGISTRY.build(kind, fu_class, num_modules, stats=stats,
                          scheme=scheme, allow_swap=allow_swap)


# ----- family registrations ---------------------------------------------------
# The paper's menu, registered in-module: make_policy resolves through
# the registry, so these builders must reproduce the pre-registry
# factory byte for byte (tests/core/test_registry.py holds them to a
# hand-written reference).  Fused batch kernels are attached by
# repro.batch.kernels / kernels_np at their import.


def _build_original(req: PolicyRequest) -> SteeringPolicy:
    return OriginalPolicy()


def _build_round_robin(req: PolicyRequest) -> SteeringPolicy:
    return RoundRobinPolicy()


def _build_full_ham(req: PolicyRequest) -> SteeringPolicy:
    return FullHammingPolicy(allow_swap=req.allow_swap)


def _build_one_bit_ham(req: PolicyRequest) -> SteeringPolicy:
    return OneBitHammingPolicy(scheme=req.scheme, allow_swap=req.allow_swap)


def _build_lut(req: PolicyRequest) -> SteeringPolicy:
    lut = build_lut(req.stats, req.num_modules, req.params["bits"])
    return LUTPolicy(lut=lut, scheme=req.scheme)


REGISTRY.register(PolicyFamily(
    name="original", syntax="original",
    description="first-come-first-serve routing (the paper's baseline)",
    parse=exact_name("original"), build=_build_original,
    policy_types=(OriginalPolicy,),
    grid_kinds=("original",), grid_order=90.0,
    cli_defaults=((0, "original"),)))

REGISTRY.register(PolicyFamily(
    name="round-robin", syntax="round-robin",
    description="rotate the starting module every cycle (ablation)",
    parse=exact_name("round-robin"), build=_build_round_robin,
    policy_types=(RoundRobinPolicy,)))

REGISTRY.register(PolicyFamily(
    name="full-ham", syntax="full-ham",
    description="optimal full-width Hamming matching (section 4.1 bound)",
    parse=exact_name("full-ham"), build=_build_full_ham,
    policy_types=(FullHammingPolicy,), supports_swap=True,
    grid_kinds=("full-ham",), grid_order=10.0,
    cli_defaults=((20, "full-ham"),)))

REGISTRY.register(PolicyFamily(
    name="1bit-ham", syntax="1bit-ham",
    description="optimal matching on information bits only (section 4.2)",
    parse=exact_name("1bit-ham"), build=_build_one_bit_ham,
    policy_types=(OneBitHammingPolicy,), supports_swap=True,
    grid_kinds=("1bit-ham",), grid_order=20.0))

REGISTRY.register(PolicyFamily(
    name="lut", syntax="lut-<bits>",
    description="greedy stateless LUT steering (section 4.3, the"
                " paper's proposal); <bits> is the case-vector width",
    parse=int_suffix("lut-"), build=_build_lut,
    policy_types=(LUTPolicy,), needs_stats=True,
    grid_kinds=("lut-8", "lut-4", "lut-2"), grid_order=30.0,
    cli_defaults=((10, "lut-4"),)))
