"""Steering policies and the stream evaluator (sections 4.1-4.3).

A *policy* decides, for the operations one cycle issues to an FU class,
which module each operation drives and whether its operands are swapped
by the router.  The paper's candidates, in decreasing implementation
cost:

* :class:`FullHammingPolicy` — the optimal assignment of section 4.1
  ("Full Ham" in Figure 4): full-width Hamming cost matrix against each
  module's latched inputs, exact matching.
* :class:`OneBitHammingPolicy` — the same matrix computed only on the
  information bits ("1-bit Ham"): the upper bound of any scheme that
  sees one bit per operand.
* :class:`LUTPolicy` — the actual proposal (section 4.3): a stateless
  lookup keyed by the concatenated cases of the first few operations.
* :class:`OriginalPolicy` — first-come-first-serve, how existing
  superscalars route ("Original").

:class:`PolicyEvaluator` subscribes to a simulator's issue stream and
accumulates each policy's switched-bit count through a
:class:`~repro.core.power.FUPowerModel`, so arbitrarily many policies
can be scored in a single simulation pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence

from ..cpu.trace import IssueGroup, MicroOp
from ..isa import encoding
from ..isa.instructions import FUClass
from .assignment import Assignment, optimal_assignment
from .info_bits import InfoBitScheme, case_of, scheme_for
from .lut import SteeringLUT, build_lut
from .power import FUPowerModel, operand_width
from .statistics import CaseStatistics
from .swapping import HardwareSwapper


class SteeringPolicy(Protocol):
    """Maps one cycle's operations onto distinct modules."""

    name: str

    def assign(self, ops: Sequence[MicroOp],
               power: FUPowerModel) -> Assignment:
        """Choose modules (and router swaps) for this cycle's ops."""
        ...


@dataclass
class OriginalPolicy:
    """First-come-first-serve: operation k drives module k.

    This is how a conventional superscalar fills its functional units
    and is the baseline all reductions in Figure 4 are measured against.
    """

    name: str = "original"

    def assign(self, ops: Sequence[MicroOp], power: FUPowerModel) -> Assignment:
        return Assignment(modules=tuple(range(len(ops))),
                          swapped=(False,) * len(ops), total_cost=0.0)


@dataclass
class RoundRobinPolicy:
    """Ablation baseline: rotate the starting module every cycle."""

    name: str = "round-robin"
    _next: int = 0

    def assign(self, ops: Sequence[MicroOp], power: FUPowerModel) -> Assignment:
        count = power.num_modules
        modules = tuple((self._next + k) % count for k in range(len(ops)))
        self._next = (self._next + len(ops)) % count
        return Assignment(modules=modules, swapped=(False,) * len(ops),
                          total_cost=0.0)


@dataclass
class FullHammingPolicy:
    """Optimal full-width Hamming assignment (cost-prohibitive bound)."""

    allow_swap: bool = False
    name: str = "full-ham"

    def __post_init__(self) -> None:
        if self.allow_swap:
            self.name = "full-ham+swap"

    def assign(self, ops: Sequence[MicroOp], power: FUPowerModel) -> Assignment:
        mask = (1 << operand_width(power.fu_class)) - 1

        def cost(op1: int, op2: int, prev1: int, prev2: int) -> float:
            return (encoding.popcount((op1 ^ prev1) & mask)
                    + encoding.popcount((op2 ^ prev2) & mask))

        inputs = [power.module_inputs(m) for m in range(power.num_modules)]
        return optimal_assignment(ops, inputs, cost, allow_swap=self.allow_swap)


@dataclass
class OneBitHammingPolicy:
    """Optimal assignment seeing only information bits (section 4.2)."""

    scheme: InfoBitScheme
    allow_swap: bool = False
    name: str = "1bit-ham"

    def __post_init__(self) -> None:
        if self.allow_swap:
            self.name = "1bit-ham+swap"

    def assign(self, ops: Sequence[MicroOp], power: FUPowerModel) -> Assignment:
        extract = self.scheme.extract

        def cost(op1: int, op2: int, prev1: int, prev2: int) -> float:
            return (abs(extract(op1) - extract(prev1))
                    + abs(extract(op2) - extract(prev2)))

        inputs = [power.module_inputs(m) for m in range(power.num_modules)]
        return optimal_assignment(ops, inputs, cost, allow_swap=self.allow_swap)


@dataclass
class LUTPolicy:
    """The paper's proposal: stateless LUT steering (section 4.3).

    The first ``lut.vector_ops`` operations are steered by the table;
    any additional operations (issue wider than the vector) fall back to
    the remaining modules first-come-first-serve, mirroring a router
    whose vector simply does not see them.
    """

    lut: SteeringLUT
    scheme: InfoBitScheme
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"lut-{self.lut.vector_bits}bit"

    def assign(self, ops: Sequence[MicroOp], power: FUPowerModel) -> Assignment:
        visible = ops[:self.lut.vector_ops]
        cases = [case_of(op, self.scheme) for op in visible]
        steered = list(self.lut.lookup(cases))
        free = [m for m in range(power.num_modules) if m not in steered]
        modules = tuple(steered + free[:len(ops) - len(steered)])
        return Assignment(modules=modules, swapped=(False,) * len(ops),
                          total_cost=0.0)


@dataclass
class EvaluationTotals:
    """What one policy accumulated over a stream."""

    policy: str
    fu_class: FUClass
    switched_bits: int
    operations: int
    cycles_seen: int
    hardware_swaps: int

    @property
    def bits_per_operation(self) -> float:
        if not self.operations:
            return 0.0
        return self.switched_bits / self.operations

    def reduction_vs(self, baseline: "EvaluationTotals") -> float:
        """Fractional energy reduction relative to a baseline run."""
        if not baseline.switched_bits:
            return 0.0
        return 1.0 - self.switched_bits / baseline.switched_bits


class PolicyEvaluator:
    """Issue-stream listener scoring one (policy, swapper) combination."""

    def __init__(self, fu_class: FUClass, num_modules: int,
                 policy: SteeringPolicy,
                 scheme: Optional[InfoBitScheme] = None,
                 pre_swapper: Optional[HardwareSwapper] = None,
                 include_speculative: bool = True):
        self.fu_class = fu_class
        self.policy = policy
        self.scheme = scheme or scheme_for(fu_class)
        self.pre_swapper = pre_swapper
        self.include_speculative = include_speculative
        self.power = FUPowerModel(fu_class, num_modules)
        self.cycles_seen = 0

    def __call__(self, group: IssueGroup) -> None:
        if group.fu_class is not self.fu_class:
            return
        ops: List[MicroOp] = group.ops
        if not self.include_speculative:
            ops = [op for op in ops if not op.speculative]
        if not ops:
            return
        if self.pre_swapper is not None:
            ops = [self.pre_swapper(op) for op in ops]
        self.cycles_seen += 1
        assignment = self.policy.assign(ops, self.power)
        for op, module, swap in zip(ops, assignment.modules,
                                    assignment.swapped):
            op1, op2 = (op.op2, op.op1) if swap else (op.op1, op.op2)
            self.power.account(module, op1, op2)

    @property
    def label(self) -> str:
        suffix = "+hwswap" if self.pre_swapper is not None else ""
        return f"{self.policy.name}{suffix}"

    def totals(self) -> EvaluationTotals:
        swaps = (self.pre_swapper.swaps_performed
                 if self.pre_swapper is not None else 0)
        return EvaluationTotals(policy=self.label, fu_class=self.fu_class,
                                switched_bits=self.power.switched_bits,
                                operations=self.power.operations,
                                cycles_seen=self.cycles_seen,
                                hardware_swaps=swaps)


def make_policy(kind: str, fu_class: FUClass, num_modules: int,
                stats: Optional[CaseStatistics] = None,
                scheme: Optional[InfoBitScheme] = None,
                allow_swap: bool = False) -> SteeringPolicy:
    """Factory covering every scheme in Figure 4.

    ``kind`` is one of ``original``, ``round-robin``, ``full-ham``,
    ``1bit-ham``, ``lut-8``, ``lut-4``, ``lut-2`` (the number is the
    vector width in bits).  LUT kinds require ``stats``.
    """
    scheme = scheme or scheme_for(fu_class)
    if kind == "original":
        return OriginalPolicy()
    if kind == "round-robin":
        return RoundRobinPolicy()
    if kind == "full-ham":
        return FullHammingPolicy(allow_swap=allow_swap)
    if kind == "1bit-ham":
        return OneBitHammingPolicy(scheme=scheme, allow_swap=allow_swap)
    if kind.startswith("lut-"):
        if stats is None:
            raise ValueError("LUT policies need case statistics")
        vector_bits = int(kind.split("-", 1)[1])
        lut = build_lut(stats, num_modules, vector_bits)
        return LUTPolicy(lut=lut, scheme=scheme)
    raise ValueError(f"unknown policy kind '{kind}'")
