"""The pluggable policy-family registry.

Every steering-policy family the repo knows — the paper's menu in
:mod:`repro.core.steering` as well as new families like the
BDD-synthesised tables in :mod:`repro.core.bdd` — registers exactly one
:class:`PolicyFamily` descriptor here.  Everything that used to be a
hand-maintained dispatch site consults the registry instead:

* :func:`repro.core.steering.make_policy` resolves kind strings
  (``lut-4``, ``bdd-8``, ``original``) through :meth:`PolicyRegistry.build`;
* the batch engines resolve fused kernels per backend through
  :meth:`PolicyRegistry.kernel_factory` instead of ``type(policy)``
  chains (a family with no kernel for a backend cleanly falls through
  to the next backend and finally the object path);
* figure-4 grids, CLI policy choices/defaults, campaign-spec
  validation, and report labels all derive from the family metadata.

Adding a family therefore touches one module: define the policy class,
build a :class:`PolicyFamily` (name pattern + parameter parser +
constructor + requirements + grid metadata), call
:meth:`PolicyRegistry.register`, and optionally attach fused kernels
with :meth:`PolicyRegistry.register_kernel`.  No dispatch site changes.

The registry deliberately imports nothing from the rest of the package
so any module (core, batch, analysis, runner, CLI) can depend on it
without cycles; family modules import the registry, never the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

__all__ = [
    "PolicyFamily", "PolicyNameError", "PolicyRegistry", "PolicyRequest",
    "REGISTRY", "exact_name", "int_suffix",
]


class PolicyNameError(ValueError):
    """An unknown or malformed policy kind string.

    A :class:`ValueError` subclass so pre-registry callers that caught
    ``ValueError`` from ``make_policy`` keep working.
    """


class _ParseError(Exception):
    """Raised by a parser that owns the kind's shape but rejects it
    (e.g. ``lut-abc``): carries the reason into the final error."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def exact_name(name: str) -> Callable[[str], Optional[Mapping[str, Any]]]:
    """Parser for a parameterless kind: matches exactly ``name``."""

    def parse(kind: str) -> Optional[Mapping[str, Any]]:
        return {} if kind == name else None

    return parse


def int_suffix(prefix: str, param: str = "bits"
               ) -> Callable[[str], Optional[Mapping[str, Any]]]:
    """Parser for ``<prefix><int>`` kinds (``lut-4`` → ``{"bits": 4}``).

    A kind with the right prefix but a non-integer suffix is *owned but
    malformed* — the registry reports it with the family's syntax
    instead of letting a bare ``int()`` traceback escape.
    """

    def parse(kind: str) -> Optional[Mapping[str, Any]]:
        if not kind.startswith(prefix):
            return None
        suffix = kind[len(prefix):]
        try:
            return {param: int(suffix)}
        except ValueError:
            raise _ParseError(
                f"expected an integer after '{prefix}', got '{suffix}'")

    return parse


@dataclass(frozen=True)
class PolicyRequest:
    """Everything a family constructor may need to build one policy."""

    kind: str                       # the full kind string, e.g. "lut-4"
    params: Mapping[str, Any]       # what the family's parser extracted
    fu_class: Any                   # repro.isa.instructions.FUClass
    num_modules: int
    stats: Optional[Any]            # repro.core.statistics.CaseStatistics
    scheme: Any                     # repro.core.info_bits.InfoBitScheme
    allow_swap: bool


@dataclass(frozen=True)
class PolicyFamily:
    """One registered policy family.

    ``parse`` maps a kind string to a parameter mapping (``None`` when
    the kind is not this family's); ``build`` constructs a policy from
    a :class:`PolicyRequest`.  ``policy_types`` lists the *exact*
    runtime classes the family constructs — kernel resolution matches
    ``type(policy)`` against them, so subclasses (e.g. the hybrid
    criticality-aware LUT) deliberately fall through to the object
    path unless they register their own family.
    """

    name: str                       # registry key, e.g. "lut"
    syntax: str                     # display pattern, e.g. "lut-<bits>"
    description: str
    parse: Callable[[str], Optional[Mapping[str, Any]]]
    build: Callable[[PolicyRequest], Any]
    policy_types: Tuple[type, ...] = ()
    #: the constructor requires CaseStatistics (LUT-style synthesis)
    needs_stats: bool = False
    #: the policy itself honours ``allow_swap`` (router operand swaps
    #: computed by the matcher); families without it get a hardware
    #: pre-swapper in swap regimes instead
    supports_swap: bool = False
    #: kinds this family contributes to the default figure-4 grid
    grid_kinds: Tuple[str, ...] = ()
    #: grid rows are ordered by (grid_order, declaration order)
    grid_order: float = 50.0
    #: (rank, kind) pairs contributed to the default CLI policy list
    cli_defaults: Tuple[Tuple[int, str], ...] = ()
    #: optional report-label override: kind -> column label
    label: Optional[Callable[[str], str]] = None


class PolicyRegistry:
    """Registry instance: families, per-backend kernels, metadata."""

    def __init__(self) -> None:
        self._families: Dict[str, PolicyFamily] = {}
        self._by_type: Dict[type, PolicyFamily] = {}
        self._kernels: Dict[Tuple[str, str], Callable] = {}

    # ----- registration -------------------------------------------------

    def register(self, family: PolicyFamily) -> PolicyFamily:
        """Add one family; duplicate names or policy types are bugs."""
        if family.name in self._families:
            raise ValueError(f"policy family '{family.name}' already"
                             " registered")
        for cls in family.policy_types:
            owner = self._by_type.get(cls)
            if owner is not None:
                raise ValueError(
                    f"policy type {cls.__name__} already registered to"
                    f" family '{owner.name}'")
        self._families[family.name] = family
        for cls in family.policy_types:
            self._by_type[cls] = family
        return family

    def register_kernel(self, family_name: str, backend: str,
                        factory: Callable) -> None:
        """Attach a fused batch kernel factory to a family.

        ``factory(evaluator, columns)`` returns a zero-argument runner,
        or ``None`` to decline this evaluator (scheme mismatch, module
        count out of the kernel's range, ...) — declining falls through
        exactly like an unregistered backend.
        """
        if family_name not in self._families:
            raise ValueError(f"unknown policy family '{family_name}'")
        self._kernels[(family_name, backend)] = factory

    # ----- kind resolution ----------------------------------------------

    def known_kinds(self) -> str:
        """Human-readable list of every registered kind syntax."""
        return ", ".join(f.syntax for f in self._families.values())

    def resolve(self, kind: str) -> Tuple[PolicyFamily, Mapping[str, Any]]:
        """Match a kind string to (family, parameters) or raise
        :class:`PolicyNameError` naming every registered kind."""
        for family in self._families.values():
            try:
                params = family.parse(kind)
            except _ParseError as exc:
                raise PolicyNameError(
                    f"malformed policy kind '{kind}': {exc.reason}"
                    f" (syntax: {family.syntax});"
                    f" registered kinds: {self.known_kinds()}") from None
            if params is not None:
                return family, params
        raise PolicyNameError(
            f"unknown policy kind '{kind}';"
            f" registered kinds: {self.known_kinds()}")

    def build(self, kind: str, fu_class: Any, num_modules: int,
              stats: Optional[Any] = None, scheme: Optional[Any] = None,
              allow_swap: bool = False) -> Any:
        """Construct a policy — the engine behind ``make_policy``."""
        family, params = self.resolve(kind)
        if family.needs_stats and stats is None:
            raise PolicyNameError(
                f"{family.syntax} policies need case statistics")
        if scheme is None:
            from .info_bits import scheme_for
            scheme = scheme_for(fu_class)
        return family.build(PolicyRequest(
            kind=kind, params=params, fu_class=fu_class,
            num_modules=num_modules, stats=stats, scheme=scheme,
            allow_swap=allow_swap))

    # ----- kernel resolution --------------------------------------------

    def family_of(self, policy: Any) -> Optional[PolicyFamily]:
        """The family that registered ``type(policy)`` exactly, if any."""
        return self._by_type.get(type(policy))

    def kernel_factory(self, policy: Any, backend: str
                       ) -> Optional[Callable]:
        """The fused-kernel factory for this policy on one backend, or
        ``None`` → fall through (next backend, then the object path)."""
        family = self._by_type.get(type(policy))
        if family is None:
            return None
        return self._kernels.get((family.name, backend))

    def kernel_backends(self, family_name: str) -> Tuple[str, ...]:
        """Backends a family has fused kernels registered for."""
        return tuple(sorted(backend for (name, backend) in self._kernels
                            if name == family_name))

    # ----- metadata for grids, CLI, and reports -------------------------

    def families(self) -> List[PolicyFamily]:
        """All families in registration order."""
        return list(self._families.values())

    def grid_kinds(self) -> Tuple[str, ...]:
        """The default figure-4 grid, ordered by family grid_order."""
        ordered = sorted(self._families.values(),
                         key=lambda f: f.grid_order)
        return tuple(kind for family in ordered
                     for kind in family.grid_kinds)

    def grid_sort_key(self, kind: str):
        """Sort key placing known grid kinds first, in grid order."""
        grid = self.grid_kinds()
        if kind in grid:
            return (0, grid.index(kind), "")
        return (1, 0, kind)

    def default_policies(self) -> Tuple[str, ...]:
        """The default CLI policy list, from family cli_defaults."""
        pairs = sorted((rank, kind) for family in self._families.values()
                       for rank, kind in family.cli_defaults)
        return tuple(kind for _rank, kind in pairs)

    def label_for(self, kind: str) -> str:
        """Report label for a kind (family override or the kind itself)."""
        for family in self._families.values():
            try:
                params = family.parse(kind)
            except _ParseError:
                return kind
            if params is not None:
                return family.label(kind) if family.label else kind
        return kind


#: the process-wide registry every dispatch site consults
REGISTRY = PolicyRegistry()
