"""Hybrid schemes from the paper's related-work discussion (section 3).

The paper argues its steering is *complementary* to two other
functional-unit power techniques and sketches the hybrids explicitly:

* **Partially guarded computation** (Choi et al. [8]): each FU is split
  into a less-significant and a more-significant portion; when the
  operands' useful width fits the low portion, the high portion is
  guarded off and its result produced by a sign-extension circuit.
  "One can imagine a hybrid scheme where our method is used, but each
  functional unit is one of theirs, and improvements gained will be
  additive."  :class:`GuardedFUPowerModel` implements that FU: the high
  portion's input latches hold their values across narrow operations,
  so steering (which clusters similar operands) and guarding (which
  skips the high half entirely) compose.

* **Criticality-steered heterogeneous modules** (Seng et al. [19]):
  modules come in a fast, power-hungry variant and a slow, efficient
  variant; critical operations go to fast modules.  "One can imagine a
  hybrid scheme where multiple functional units are available as in our
  scheme, but two versions of each unit are available."
  :class:`HeterogeneousPowerModel` weights each module's switched bits
  by its variant's relative energy, and
  :class:`CriticalityAwareLUTPolicy` first respects criticality (fast
  modules for critical ops), then applies case steering within each
  speed class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..cpu.trace import MicroOp
from ..isa import encoding
from ..isa.instructions import FUClass
from .assignment import Assignment
from .info_bits import InfoBitScheme, case_of
from .lut import SteeringLUT
from .power import FUPowerModel, operand_width


class GuardedFUPowerModel(FUPowerModel):
    """Power model for partially guarded functional units.

    Operands whose top bits are pure sign extension down to
    ``low_width`` bits leave the high portion guarded: its latches are
    not clocked, so only low-portion switching (plus a fixed guard
    control overhead) is charged.  Wide operations charge the full
    Hamming distance, including whatever the high latches last held.
    """

    def __init__(self, fu_class: FUClass, num_modules: int,
                 low_width: int = 16, guard_overhead_bits: int = 1):
        if fu_class is not FUClass.IALU and fu_class is not FUClass.IMULT:
            raise ValueError("guarded computation applies to integer"
                             " datapaths (sign-extension semantics)")
        super().__init__(fu_class, num_modules)
        width = operand_width(fu_class)
        if not (1 <= low_width < width):
            raise ValueError("low portion must be narrower than the datapath")
        self.low_width = low_width
        self.guard_overhead_bits = guard_overhead_bits
        self._low_mask = (1 << low_width) - 1
        self._width = width
        self.narrow_operations = 0

    def _is_narrow(self, bits: int) -> bool:
        """Do the top bits just sign-extend the low portion?"""
        top = bits >> (self.low_width - 1)
        top_width = self._width - self.low_width + 1
        return top == 0 or top == (1 << top_width) - 1

    def account(self, module: int, op1: int, op2: int) -> int:
        if not (0 <= module < self.num_modules):
            raise ValueError(f"module {module} out of range")
        prev1, prev2 = self._inputs[module]
        narrow = self._is_narrow(op1) and self._is_narrow(op2)
        if narrow:
            cost = (encoding.popcount((prev1 ^ op1) & self._low_mask)
                    + encoding.popcount((prev2 ^ op2) & self._low_mask)
                    + self.guard_overhead_bits)
            # the high latches hold their previous values
            new1 = (prev1 & ~self._low_mask) | (op1 & self._low_mask)
            new2 = (prev2 & ~self._low_mask) | (op2 & self._low_mask)
            self._inputs[module] = (new1, new2)
            self.narrow_operations += 1
        else:
            cost = (encoding.popcount((prev1 ^ op1) & self._mask)
                    + encoding.popcount((prev2 ^ op2) & self._mask))
            self._inputs[module] = (op1, op2)
        self.switched_bits += cost
        self.operations += 1
        return cost

    @property
    def narrow_fraction(self) -> float:
        """Fraction of operations that ran with the high half guarded."""
        if not self.operations:
            return 0.0
        return self.narrow_operations / self.operations


@dataclass
class ModuleVariant:
    """One module's speed/power variant in a heterogeneous pool."""

    fast: bool
    energy_weight: float  # relative energy per switched input bit


def standard_variants(num_modules: int, num_fast: int,
                      slow_energy: float = 0.6) -> List[ModuleVariant]:
    """A pool with ``num_fast`` fast modules, the rest slow/efficient."""
    if not (0 <= num_fast <= num_modules):
        raise ValueError("num_fast out of range")
    variants = [ModuleVariant(fast=True, energy_weight=1.0)
                for _ in range(num_fast)]
    variants += [ModuleVariant(fast=False, energy_weight=slow_energy)
                 for _ in range(num_modules - num_fast)]
    return variants


class HeterogeneousPowerModel(FUPowerModel):
    """Hamming accounting with per-module energy weights.

    ``weighted_energy`` is the figure of merit (switched bits scaled by
    each module's variant weight); ``switched_bits`` stays the raw
    count so results remain comparable with the homogeneous models.
    """

    def __init__(self, fu_class: FUClass,
                 variants: Sequence[ModuleVariant]):
        super().__init__(fu_class, len(variants))
        self.variants = list(variants)
        self.weighted_energy = 0.0
        self.critical_on_slow = 0

    def account(self, module: int, op1: int, op2: int) -> int:
        cost = super().account(module, op1, op2)
        self.weighted_energy += cost * self.variants[module].energy_weight
        return cost


@dataclass
class CriticalityAwareLUTPolicy:
    """Case steering constrained by module speed classes.

    Critical operations (as flagged by the simulator: the oldest ready
    op each cycle) may only use fast modules; non-critical operations
    prefer slow modules.  Within each speed class the operation's case
    picks the module whose LUT home matches best, so the hybrid keeps
    the paper's switching benefit while harvesting the heterogeneous
    pool's voltage/sizing benefit on non-critical work.
    """

    lut: SteeringLUT
    scheme: InfoBitScheme
    variants: Sequence[ModuleVariant]
    name: str = "hetero-lut"

    def __post_init__(self) -> None:
        if len(self.variants) != self.lut.num_modules:
            raise ValueError("one variant per module required")
        self._fast = [i for i, v in enumerate(self.variants) if v.fast]
        self._slow = [i for i, v in enumerate(self.variants) if not v.fast]
        if not self._fast:
            raise ValueError("need at least one fast module for critical ops")

    def assign(self, ops: Sequence[MicroOp],
               power: FUPowerModel) -> Assignment:
        from .info_bits import case_hamming

        available_fast = list(self._fast)
        available_slow = list(self._slow)
        modules: List[Optional[int]] = [None] * len(ops)

        def take_best(pools: Sequence[List[int]], case: int) -> int:
            for pool in pools:
                if pool:
                    best = min(pool, key=lambda m:
                               (case_hamming(case, self.lut.homes[m]), m))
                    pool.remove(best)
                    return best
            raise RuntimeError("no module available")

        # critical ops first, onto fast modules (falling back to slow
        # only if the cycle has more critical ops than fast modules)
        order = sorted(range(len(ops)),
                       key=lambda k: (not ops[k].critical, k))
        for k in order:
            case = case_of(ops[k], self.scheme)
            if ops[k].critical:
                modules[k] = take_best([available_fast, available_slow],
                                       case)
            else:
                modules[k] = take_best([available_slow, available_fast],
                                       case)
        return Assignment(modules=tuple(modules),  # type: ignore[arg-type]
                          swapped=(False,) * len(ops), total_cost=0.0)
