"""Information bits and operand cases (sections 1 and 4.2 of the paper).

An operand's *information bit* is a one-bit summary that predicts which
bit value (0 or 1) dominates the rest of the operand:

* **integers** — the sign bit: two's-complement sign extension makes the
  leading bits equal to it, so the sign bit predicts the majority value;
* **floating point** — the OR of the least-significant four mantissa
  bits: when all four are zero the mantissa very likely has a long run
  of trailing zeros (integer casts, widened singles, round constants),
  whereas a 1 predicts a full-precision, roughly 50/50 mantissa.

An instruction's two information bits concatenate into its **case**,
one of ``00``, ``01``, ``10``, ``11`` (operand 1's bit is the high bit).
The steering LUT, hardware swapping, and the 1-bit Hamming policy all
operate on cases.

Extraction is parameterised through :class:`InfoBitScheme` so the
ablation benches can vary the number of mantissa bits ORed together or
use a top-bits majority for integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..isa import encoding
from ..isa.instructions import FUClass
from ..cpu.trace import MicroOp

CASES = (0b00, 0b01, 0b10, 0b11)
CASE_NAMES = {0b00: "00", 0b01: "01", 0b10: "10", 0b11: "11"}

INTEGER_CLASSES = frozenset({FUClass.IALU, FUClass.IMULT, FUClass.LSU})
FLOAT_CLASSES = frozenset({FUClass.FPAU, FUClass.FPMULT})


def int_info_bit(bits: int) -> int:
    """Sign bit of a 32-bit integer image."""
    return (bits >> 31) & 1


def fp_info_bit(bits: int) -> int:
    """OR of the bottom four mantissa bits of a double image.

    The mantissa occupies the low 52 bits of the image, so its bottom
    four bits are the image's bottom four bits.
    """
    return 1 if bits & 0xF else 0


def fp_info_bit_k(bits: int, k: int) -> int:
    """Ablation variant: OR of the bottom ``k`` mantissa bits."""
    if not (1 <= k <= encoding.MANTISSA_BITS):
        raise ValueError(f"k must be in 1..{encoding.MANTISSA_BITS}")
    return 1 if bits & ((1 << k) - 1) else 0


def int_top_bits_majority(bits: int, k: int) -> int:
    """Ablation variant: majority vote of the top ``k`` bits."""
    if not (1 <= k <= encoding.INT_BITS):
        raise ValueError(f"k must be in 1..{encoding.INT_BITS}")
    top = bits >> (encoding.INT_BITS - k)
    return 1 if 2 * encoding.popcount(top) > k else 0


@dataclass(frozen=True)
class InfoBitScheme:
    """How to summarise one operand into an information bit.

    ``extract`` maps an operand bit image to 0/1.  ``value_width`` is the
    number of bits the power model considers for this operand kind (32
    for integers, the 52 mantissa bits for floating point).
    """

    name: str
    extract: Callable[[int], int]
    value_width: int
    # optional fused (op1, op2) -> case function; semantically identical
    # to case_of but avoids two extract calls per operation, which
    # matters to per-cycle steering policies.  Schemes without one fall
    # back to the generic composition.
    pair_case: Optional[Callable[[int, int], int]] = None

    def case_of(self, op1: int, op2: int) -> int:
        """Concatenate the two operands' information bits (op1 high)."""
        pair = self.pair_case
        if pair is not None:
            return pair(op1, op2)
        return (self.extract(op1) << 1) | self.extract(op2)


PAPER_INT_SCHEME = InfoBitScheme(
    "sign-bit", int_info_bit, encoding.INT_BITS,
    lambda op1, op2: ((op1 >> 30) & 2) | ((op2 >> 31) & 1))
PAPER_FP_SCHEME = InfoBitScheme(
    "or-low-4", fp_info_bit, encoding.MANTISSA_BITS,
    lambda op1, op2: (2 if op1 & 0xF else 0) | (1 if op2 & 0xF else 0))


def scheme_for(fu_class: FUClass) -> InfoBitScheme:
    """The paper's information-bit scheme for a functional-unit class."""
    if fu_class in INTEGER_CLASSES:
        return PAPER_INT_SCHEME
    return PAPER_FP_SCHEME


def make_fp_scheme(k: int) -> InfoBitScheme:
    """Floating point scheme ORing the bottom ``k`` mantissa bits."""
    return InfoBitScheme(f"or-low-{k}", lambda bits: fp_info_bit_k(bits, k),
                         encoding.MANTISSA_BITS)


def make_int_scheme(k: int) -> InfoBitScheme:
    """Integer scheme taking the majority of the top ``k`` bits."""
    if k == 1:
        return PAPER_INT_SCHEME
    return InfoBitScheme(f"top-{k}-majority",
                         lambda bits: int_top_bits_majority(bits, k),
                         encoding.INT_BITS)


def case_of(op: MicroOp, scheme: InfoBitScheme) -> int:
    """Case of a micro-op under a scheme (missing operand reads as 0)."""
    return scheme.case_of(op.op1, op.op2 if op.has_two else 0)


def case_hamming(case_a: int, case_b: int) -> int:
    """Hamming distance between two 2-bit cases (0, 1, or 2)."""
    diff = (case_a ^ case_b) & 0b11
    return (diff & 1) + (diff >> 1)


def swapped_case(case: int) -> int:
    """Case after exchanging the two operands."""
    return ((case & 1) << 1) | (case >> 1)
