"""Operand swapping (section 4.4).

Three swappers are provided:

* :class:`HardwareSwapper` — the paper's dynamic rule for steered FU
  classes: always swap commutative operations of one chosen case.  The
  case to swap *from* is the one of {01, 10} whose non-commutative
  residue is rarer, because non-commutative instructions cannot be
  flipped and would keep causing worst-case transitions.  With the
  paper's Table 1 this selects case 01 for the IALU and case 10 for
  the FPAU.

* :class:`MultiplierSwapper` — for non-duplicated Booth multipliers:
  ensure the *second* operand (the multiplier) is the one with fewer
  1s, since partial-product adds track the multiplier's set bits.  The
  information-bit mode is hardware-feasible (swap case 01 into 10); the
  popcount and Booth modes model what a compiler or a wider comparator
  could do.

* compiler swapping lives in :mod:`repro.compiler` — it rewrites the
  program statically from profile data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..cpu.trace import MicroOp
from .info_bits import InfoBitScheme, case_of
from .power import booth_recode_activity, operand_width, shift_add_activity
from .statistics import CaseStatistics


def choose_swap_case(stats: CaseStatistics) -> int:
    """Pick the case to always swap, per the paper's rule.

    Of the two mixed cases, swap the one with the lower frequency of
    non-commutative instructions (ties break toward case 01, the
    paper's IALU choice).
    """
    freq_01 = stats.noncommutative_freq(0b01)
    freq_10 = stats.noncommutative_freq(0b10)
    return 0b01 if freq_01 <= freq_10 else 0b10


@dataclass
class HardwareSwapper:
    """Always swap commutative operations of ``swap_from_case``."""

    scheme: InfoBitScheme
    swap_from_case: int
    swaps_performed: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.swap_from_case not in (0b01, 0b10):
            raise ValueError("only the mixed cases 01 and 10 are swappable"
                             " to any benefit")

    def __call__(self, op: MicroOp) -> MicroOp:
        if not op.hardware_swappable:
            return op
        if case_of(op, self.scheme) != self.swap_from_case:
            return op
        self.swaps_performed += 1
        return op.swap()


class SwapMode(enum.Enum):
    """How a multiplier swapper compares the two operands."""

    INFO_BIT = "info-bit"
    POPCOUNT = "popcount"
    BOOTH = "booth"


@dataclass
class MultiplierSwapper:
    """Put the operand with less add activity second (section 4.4)."""

    scheme: InfoBitScheme
    mode: SwapMode = SwapMode.INFO_BIT
    width: Optional[int] = None
    swaps_performed: int = field(default=0, compare=False)

    def __call__(self, op: MicroOp) -> MicroOp:
        if not op.hardware_swappable:
            return op
        if self._should_swap(op):
            self.swaps_performed += 1
            return op.swap()
        return op

    def _should_swap(self, op: MicroOp) -> bool:
        if self.mode is SwapMode.INFO_BIT:
            return case_of(op, self.scheme) == 0b01
        width = self.width or operand_width(op.op.fu_class)
        if self.mode is SwapMode.POPCOUNT:
            return (shift_add_activity(op.op2, width)
                    > shift_add_activity(op.op1, width))
        return (booth_recode_activity(op.op2, width)
                > booth_recode_activity(op.op1, width))
