"""Two-level logic synthesis for the steering LUT (section 5).

The paper implements the conceptual LUT as combinational logic and
reports its size: 58 small gates / 6 levels for the 4-bit IALU LUT with
8 reservation-station entries.  This module makes that estimate
*constructive*: the synthesised LUT is flattened to truth tables (one
per module-select output bit), minimised with the Quine-McCluskey
procedure (exact prime implicants, essential-first greedy cover), and
costed as a standard two-level AND-OR network plus input inverters.

Cubes are ``(mask, value)`` pairs over ``num_vars`` inputs: a variable
participates in the product term iff its mask bit is 1, with the
polarity given by the value bit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

Cube = Tuple[int, int]  # (mask, value); mask bit 0 => don't care


def cube_covers(cube: Cube, minterm: int) -> bool:
    """Does a cube cover a minterm?"""
    mask, value = cube
    return (minterm & mask) == (value & mask)


def cube_literals(cube: Cube) -> int:
    """Number of literals in the cube's product term."""
    return bin(cube[0]).count("1")


def _combine(a: Cube, b: Cube) -> Cube | None:
    """Merge two cubes differing in exactly one specified bit."""
    if a[0] != b[0]:
        return None
    difference = (a[1] ^ b[1]) & a[0]
    if difference and (difference & (difference - 1)) == 0:
        return (a[0] & ~difference, a[1] & ~difference)
    return None


def prime_implicants(minterms: Iterable[int], dont_cares: Iterable[int],
                     num_vars: int) -> List[Cube]:
    """All prime implicants of the on-set plus don't-care set."""
    full_mask = (1 << num_vars) - 1
    current: Set[Cube] = {(full_mask, m) for m in
                          set(minterms) | set(dont_cares)}
    primes: Set[Cube] = set()
    while current:
        combined: Set[Cube] = set()
        used: Set[Cube] = set()
        cubes = sorted(current)
        by_mask_count: Dict[Tuple[int, int], List[Cube]] = {}
        for cube in cubes:
            key = (cube[0], bin(cube[1] & cube[0]).count("1"))
            by_mask_count.setdefault(key, []).append(cube)
        for (mask, ones), group in by_mask_count.items():
            neighbours = by_mask_count.get((mask, ones + 1), [])
            for a in group:
                for b in neighbours:
                    merged = _combine(a, b)
                    if merged is not None:
                        combined.add(merged)
                        used.add(a)
                        used.add(b)
        primes.update(cube for cube in current if cube not in used)
        current = combined
    return sorted(primes)


def minimum_cover(minterms: Sequence[int], primes: Sequence[Cube]) -> List[Cube]:
    """Essential-prime-first greedy cover of the on-set.

    Exact for the easy cases (essential implicants cover everything);
    greedy-by-coverage otherwise, which is the standard practical
    compromise (Petrick's method is exponential).
    """
    remaining: Set[int] = set(minterms)
    if not remaining:
        return []
    coverage: Dict[Cube, Set[int]] = {
        prime: {m for m in remaining if cube_covers(prime, m)}
        for prime in primes}
    chosen: List[Cube] = []
    # essential primes: sole cover of some minterm
    for minterm in sorted(remaining):
        covering = [p for p in primes if minterm in coverage[p]]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for cube in chosen:
        remaining -= coverage[cube]
    # greedy: biggest remaining coverage, fewest literals, stable order
    while remaining:
        best = max(primes,
                   key=lambda p: (len(coverage[p] & remaining),
                                  -cube_literals(p),
                                  p))
        if not coverage[best] & remaining:
            raise RuntimeError("cover cannot make progress")
        chosen.append(best)
        remaining -= coverage[best]
    return chosen


@dataclass(frozen=True)
class SOPCover:
    """A minimised sum-of-products for one output bit."""

    num_vars: int
    cubes: Tuple[Cube, ...]
    constant: int | None = None  # 0 or 1 when the output is constant

    @property
    def and_gates(self) -> int:
        """Product terms needing an AND gate (two or more literals)."""
        return sum(1 for cube in self.cubes if cube_literals(cube) >= 2)

    @property
    def or_gate_needed(self) -> bool:
        return len(self.cubes) >= 2

    @property
    def literals(self) -> int:
        return sum(cube_literals(cube) for cube in self.cubes)

    def evaluate(self, inputs: int) -> int:
        """Evaluate the cover on an input assignment."""
        if self.constant is not None:
            return self.constant
        return int(any(cube_covers(cube, inputs) for cube in self.cubes))


def minimize(minterms: Iterable[int], num_vars: int,
             dont_cares: Iterable[int] = ()) -> SOPCover:
    """Quine-McCluskey minimisation of one output function."""
    on_set = sorted(set(minterms))
    dc_set = sorted(set(dont_cares) - set(on_set))
    space = 1 << num_vars
    if any(not (0 <= m < space) for m in itertools.chain(on_set, dc_set)):
        raise ValueError("minterm out of range")
    if not on_set:
        return SOPCover(num_vars, (), constant=0)
    if len(on_set) + len(dc_set) == space:
        return SOPCover(num_vars, ((0, 0),), constant=1)
    primes = prime_implicants(on_set, dc_set, num_vars)
    cover = minimum_cover(on_set, primes)
    return SOPCover(num_vars, tuple(sorted(cover)))


@dataclass(frozen=True)
class LogicCost:
    """Gate-level cost of a synthesised multi-output network."""

    gates: int
    levels: int
    literals: int
    covers: Tuple[SOPCover, ...] = field(repr=False, default=())


def synthesize_truth_table(outputs: Sequence[Sequence[int]],
                           num_vars: int) -> LogicCost:
    """Minimise a multi-output truth table and cost the network.

    ``outputs[k][i]`` is output bit ``k`` for input assignment ``i``.
    Cost model: one AND gate per multi-literal product term (shared
    across outputs when identical), one OR gate per multi-term output,
    one inverter per input used in complemented form; levels =
    inverter + AND + OR = 3 for any non-trivial two-level network.
    """
    covers = []
    for bits in outputs:
        minterms = [i for i, bit in enumerate(bits) if bit]
        covers.append(minimize(minterms, num_vars))
    shared_terms: Set[Cube] = set()
    inverted_inputs = 0
    or_gates = 0
    for cover in covers:
        if cover.constant is not None:
            continue
        for cube in cover.cubes:
            if cube_literals(cube) >= 2:
                shared_terms.add(cube)
        if cover.or_gate_needed:
            or_gates += 1
    used_inverted = 0
    for variable in range(num_vars):
        bit = 1 << variable
        if any(cube[0] & bit and not (cube[1] & bit)
               for cover in covers if cover.constant is None
               for cube in cover.cubes):
            used_inverted += 1
    gates = len(shared_terms) + or_gates + used_inverted
    nontrivial = any(cover.constant is None for cover in covers)
    if not nontrivial:
        levels = 0
    else:
        levels = 1 + (1 if shared_terms else 0) + (1 if or_gates else 0)
    return LogicCost(gates=gates, levels=levels,
                     literals=sum(c.literals for c in covers),
                     covers=tuple(covers))


@dataclass(frozen=True)
class RouterCost:
    """Total routing-control cost: LUT core plus information-bit
    forwarding from the reservation stations."""

    lut_gates: int
    forwarding_gates: int
    levels: int

    @property
    def gates(self) -> int:
        return self.lut_gates + self.forwarding_gates


def estimate_router_cost(lut, rs_entries: int) -> RouterCost:
    """Constructive router cost: synthesised LUT core + forwarding.

    The LUT core comes from actual two-level minimisation; the
    information-bit forwarding network (muxing case bits out of the
    reservation stations toward the router) is modelled as
    ``3 * rs_entries + 19`` gates with ``log2(rs_entries)`` mux levels.
    With the paper's 4-bit IALU LUT this reproduces both published
    data points exactly: 58 gates / 6 levels at 8 RS entries and
    130 gates / 8 levels at 32.
    """
    from math import log2

    if rs_entries < 1:
        raise ValueError("need at least one reservation station entry")
    core = synthesize_lut_logic(lut)
    forwarding = 3 * rs_entries + 19
    levels = core.levels + max(1, round(log2(rs_entries)))
    return RouterCost(lut_gates=core.gates, forwarding_gates=forwarding,
                      levels=levels)


def synthesize_lut_logic(lut) -> LogicCost:
    """Synthesise a steering LUT's module-select logic.

    The LUT maps a ``2 * vector_ops``-bit case vector to one module
    index per slot; each index is ``ceil(log2(num_modules))`` bits.
    Returns the minimised two-level cost of all output bits together.
    """
    from .lut import SteeringLUT  # local import to avoid a cycle

    if not isinstance(lut, SteeringLUT):
        raise TypeError("expected a SteeringLUT")
    num_vars = lut.vector_bits
    select_bits = max(1, (lut.num_modules - 1).bit_length())
    space = 1 << num_vars
    outputs: List[List[int]] = [[0] * space
                                for _ in range(lut.vector_ops * select_bits)]
    for index in range(space):
        # input assignment: slot 0's case in the top bits, matching the
        # paper's "concatenation of case(I1), case(I2), ..."
        cases = []
        for slot in range(lut.vector_ops):
            shift = 2 * (lut.vector_ops - 1 - slot)
            cases.append((index >> shift) & 0b11)
        assignment = lut.table[tuple(cases)]
        for slot, module in enumerate(assignment):
            for bit in range(select_bits):
                outputs[slot * select_bits + bit][index] = \
                    (module >> bit) & 1
    return synthesize_truth_table(outputs, num_vars)
