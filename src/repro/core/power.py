"""Dynamic power model for functional units (section 2 of the paper).

The paper models a module's dynamic power as proportional to the
Hamming distance between its current and previous input operands::

    Power ~ 1/2 * Vdd^2 * f * C_module * h_input

For integers all 32 bits count; for floating point only the 52 mantissa
bits are considered.  :class:`FUPowerModel` tracks each module's latched
inputs (power-managed FUs hold their inputs when idle, via transparent
latches) and accumulates switched bits per module.

A separate activity model covers the Booth multiplier, whose power also
depends on the number of 1s in the second operand (section 4.4); the
paper cites but does not quantify this, so we provide shift-add and
radix-2 Booth recoding activity estimators for the multiplier benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..isa import encoding
from ..isa.encoding import bit_count as _bit_count
from ..isa.instructions import FUClass
from .info_bits import FLOAT_CLASSES


def operand_width(fu_class: FUClass) -> int:
    """Bits of one operand that the power model considers."""
    return encoding.MANTISSA_BITS if fu_class in FLOAT_CLASSES else encoding.INT_BITS


@dataclass
class PowerParameters:
    """Electrical constants for converting switched bits into watts.

    Defaults are representative of a circa-2003 process (1.5 V, 1 GHz)
    with a per-input-bit effective switched capacitance.  Only relative
    numbers matter for the paper's results; these let library users
    report absolute estimates.
    """

    vdd: float = 1.5
    frequency_hz: float = 1.0e9
    capacitance_per_bit_f: float = 2.5e-14

    def energy_joules(self, switched_bits: int) -> float:
        """Energy of a given total number of input-bit transitions."""
        return 0.5 * self.vdd ** 2 * self.capacitance_per_bit_f * switched_bits

    def average_power_watts(self, switched_bits: int, cycles: int) -> float:
        """Average dynamic power over a run of ``cycles`` cycles."""
        if cycles <= 0:
            return 0.0
        return self.energy_joules(switched_bits) * self.frequency_hz / cycles


class FUPowerModel:
    """Hamming-distance energy accounting for one FU class's modules.

    Modules power up with all-zero latched inputs.  ``account`` charges
    the Hamming distance between a module's latched inputs and the new
    operation's operands, then latches the new operands.
    """

    def __init__(self, fu_class: FUClass, num_modules: int):
        if num_modules < 1:
            raise ValueError("need at least one module")
        self.fu_class = fu_class
        self.num_modules = num_modules
        mask_width = operand_width(fu_class)
        self._mask = (1 << mask_width) - 1
        self._inputs: List[Tuple[int, int]] = [(0, 0)] * num_modules
        self.switched_bits = 0
        self.operations = 0
        # per-module breakdown, allocated only when telemetry asks for
        # it (enable_module_tracking) so the default accounting loops
        # pay nothing beyond one is-None test per operation
        self.module_switched_bits: Optional[List[int]] = None
        self.module_operations: Optional[List[int]] = None
        # batched accounting is only valid when account() is not
        # overridden; resolved once here rather than per account_group
        # call (type(self) is the final subclass by __init__ time)
        self._batched = type(self).account is _BASE_ACCOUNT

    def enable_module_tracking(self) -> None:
        """Additionally accumulate switched bits and ops per module."""
        if self.module_switched_bits is None:
            self.module_switched_bits = [0] * self.num_modules
            self.module_operations = [0] * self.num_modules

    def account(self, module: int, op1: int, op2: int) -> int:
        """Charge one operation issued to ``module``; return its cost."""
        if not (0 <= module < self.num_modules):
            raise ValueError(f"module {module} out of range")
        prev1, prev2 = self._inputs[module]
        # masked XOR images are non-negative: the unchecked primitive
        # is safe here and this is the hottest accounting loop
        cost = (_bit_count((prev1 ^ op1) & self._mask)
                + _bit_count((prev2 ^ op2) & self._mask))
        self._inputs[module] = (op1, op2)
        self.switched_bits += cost
        self.operations += 1
        if self.module_switched_bits is not None:
            self.module_switched_bits[module] += cost
            self.module_operations[module] += 1
        return cost

    def account_group(self, ops: Sequence, modules: Sequence[int],
                      swapped: Sequence[bool]) -> int:
        """Batch :meth:`account` for one cycle's assignment.

        ``ops`` supplies ``op1``/``op2`` bit images (any object with
        those attributes, e.g. :class:`~repro.cpu.trace.MicroOp`);
        ``swapped[k]`` exchanges the operand order of ``ops[k]`` before
        charging.  ``zip`` semantics: extra operations beyond the
        assignment are ignored.  Module indices must already be in
        range — callers clamp at the policy layer.

        Subclasses overriding :meth:`account` (guarded or heterogeneous
        models) are dispatched per operation so their per-module logic
        still runs; only the plain model takes the batched fast path.
        """
        if not self._batched:
            account = self.account
            total = 0
            for op, module, swap in zip(ops, modules, swapped):
                if swap:
                    total += account(module, op.op2, op.op1)
                else:
                    total += account(module, op.op1, op.op2)
            return total
        inputs = self._inputs
        mask = self._mask
        bc = _bit_count
        track = self.module_switched_bits
        track_ops = self.module_operations
        total = 0
        count = 0
        for op, module, swap in zip(ops, modules, swapped):
            if swap:
                op1 = op.op2
                op2 = op.op1
            else:
                op1 = op.op1
                op2 = op.op2
            if module < 0:
                raise ValueError(f"module {module} out of range")
            prev1, prev2 = inputs[module]
            cost = (bc((prev1 ^ op1) & mask)
                    + bc((prev2 ^ op2) & mask))
            total += cost
            inputs[module] = (op1, op2)
            count += 1
            if track is not None:
                track[module] += cost
                track_ops[module] += 1
        self.switched_bits += total
        self.operations += count
        return total

    def peek_cost(self, module: int, op1: int, op2: int) -> int:
        """Cost of issuing to ``module`` without updating any state."""
        prev1, prev2 = self._inputs[module]
        return (_bit_count((prev1 ^ op1) & self._mask)
                + _bit_count((prev2 ^ op2) & self._mask))

    def module_inputs(self, module: int) -> Tuple[int, int]:
        """The latched previous inputs of one module."""
        return self._inputs[module]

    def all_module_inputs(self) -> List[Tuple[int, int]]:
        """Latched inputs of every module, in module order.

        Returns the live internal list so per-cycle policies need not
        rebuild it; callers must treat it as read-only.
        """
        return self._inputs

    def reset(self) -> None:
        """Return every module to the power-up (all zero) state."""
        self._inputs = [(0, 0)] * self.num_modules
        self.switched_bits = 0
        self.operations = 0
        if self.module_switched_bits is not None:
            self.module_switched_bits = [0] * self.num_modules
            self.module_operations = [0] * self.num_modules

    @property
    def bits_per_operation(self) -> float:
        """Average switched input bits per operation."""
        if not self.operations:
            return 0.0
        return self.switched_bits / self.operations


_BASE_ACCOUNT = FUPowerModel.account


# --- multiplier activity models (section 4.4) --------------------------------

def shift_add_activity(multiplier_bits: int, width: Optional[int] = None) -> int:
    """Adds performed by an elementary shift-and-add multiplier.

    The schoolbook algorithm adds the (shifted) multiplicand once per set
    bit of the multiplier — the second operand.  This is the quantity the
    paper's multiplier swapping minimises.
    """
    if width is not None:
        multiplier_bits &= (1 << width) - 1
    return encoding.popcount(multiplier_bits)


def booth_recode_activity(multiplier_bits: int, width: int = 32) -> int:
    """Non-zero digits after radix-2 Booth recoding of the multiplier.

    Booth recoding turns runs of 1s into one subtract and one add: digit
    ``i`` is non-zero exactly when bits ``i`` and ``i-1`` differ (with an
    implicit 0 below bit 0 and sign extension above the top bit for the
    signed multiplier).  The count is the number of run boundaries, which
    stays strongly correlated with the popcount of sparse operands.
    """
    mask = (1 << width) - 1
    masked = multiplier_bits & mask
    return encoding.popcount((masked ^ (masked << 1)) & mask)


@dataclass
class MultiplierActivityModel:
    """Accumulates multiplier activity with and without operand swapping.

    ``account`` charges both the input switching (Hamming, like other
    FUs — a single multiplier module) and the data-dependent add count
    of the second operand.  ``add_weight`` sets the relative cost of one
    partial-product add versus one switched input bit.
    """

    fu_class: FUClass
    add_weight: float = 4.0
    use_booth: bool = True
    switched_bits: int = 0
    adds: int = 0
    operations: int = 0
    _inputs: Tuple[int, int] = (0, 0)
    _mask: int = field(init=False)
    _width: int = field(init=False)

    def __post_init__(self) -> None:
        self._width = operand_width(self.fu_class)
        self._mask = (1 << self._width) - 1

    def account(self, op1: int, op2: int) -> float:
        prev1, prev2 = self._inputs
        switching = (_bit_count((prev1 ^ op1) & self._mask)
                     + _bit_count((prev2 ^ op2) & self._mask))
        if self.use_booth:
            adds = booth_recode_activity(op2 & self._mask, self._width)
        else:
            adds = shift_add_activity(op2, self._width)
        self._inputs = (op1, op2)
        self.switched_bits += switching
        self.adds += adds
        self.operations += 1
        return switching + self.add_weight * adds

    @property
    def total_cost(self) -> float:
        return self.switched_bits + self.add_weight * self.adds
