"""BDD-derived LUT synthesis — the ``bdd-<bits>`` policy family.

Section 4.3's greedy LUT synthesis is one point in a large design
space.  Popel's BDD-based low-power synthesis (cs/0207012) and his
information-measures-for-BDD-reordering work (cs/0207020, both in
PAPERS.md) suggest deriving the case→module table from a *binary
decision diagram over the case-vector statistics* instead:

1. **Demand-split home allocation** (:func:`bdd_allocate_homes`) — a
   decision-diagram partition of the module budget over the two
   information bits: the expected per-cycle demand mass of each case is
   split along the high bit, then the low bit, the budget divided
   proportionally (round-half-up, deterministic) at each branch, and
   every branch with positive mass keeps at least one module while the
   budget allows.  This replaces the greedy LUT's exhaustive
   expected-mismatch-cost search with the recursive probability
   splitting a BDD induces.
2. **Table filling** reuses :func:`repro.core.lut.build_lut` with the
   BDD homes — occupancy-weighted optimal matching per vector, so the
   table semantics (padding, spare-module remap) stay identical to the
   greedy family and the object/batch engines agree bit for bit.
3. **Information-measure variable ordering**
   (:func:`order_variables`) — Popel's measures: variables (the
   ``2 * vector_ops`` case-vector bits) are ordered greedily by the
   information gain ``H(f) - H(f | x)`` about the synthesised module
   assignment, weighted by the case-vector probability distribution
   (:func:`vector_distribution`).
4. **Diagram construction** (:func:`build_bdd`) — a reduced ordered
   (multi-terminal) BDD of the table under that order; mapping each
   decision node to a 2:1 mux (≈3 gates) gives the implementation-cost
   estimate compared against the two-level Quine–McCluskey layer
   (:func:`repro.core.logic.estimate_router_cost`) in EXPERIMENTS.md.

The family is registered here — and only here.  ``make_policy``, both
batch backends, figure-4 grids, campaign validation, and the CLI pick
it up through :data:`repro.core.registry.REGISTRY` without any dispatch
edits: the fused python kernel below reuses the LUT kernel (the table
contract is shared through ``LUTPolicy._assign_cases``), and no NumPy
kernel is registered, so ``--engine batch-np`` exercises the registry's
clean fall-through to the python kernel.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from math import log2
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .info_bits import CASES
from .lut import SteeringLUT, build_lut
from .registry import PolicyFamily, PolicyRequest, REGISTRY, int_suffix
from .statistics import CaseStatistics
from .steering import LUTPolicy

Vector = Tuple[int, ...]
Assignment = Tuple[int, ...]


# ----- case-vector statistics -------------------------------------------------


def vector_distribution(stats: CaseStatistics, num_modules: int,
                        vector_ops: int) -> Dict[Vector, float]:
    """Probability of each padded case vector.

    Mirrors the runtime exactly: a cycle issuing ``w`` operations fills
    the first ``min(w, vector_ops)`` slots from the case distribution
    and pads the rest with the least frequent case, with cycle widths
    weighted by the usage distribution (Table 2).
    """
    case_probs = stats.case_distribution()
    usage = stats.usage_distribution(num_modules)
    pad = stats.least_case()
    dist: Dict[Vector, float] = {
        vector: 0.0 for vector in itertools.product(CASES, repeat=vector_ops)}
    for width, width_prob in usage.items():
        if width_prob <= 0.0:
            continue
        filled = min(width, vector_ops)
        for combo in itertools.product(CASES, repeat=filled):
            probability = width_prob
            for case in combo:
                probability *= case_probs[case]
            if probability <= 0.0:
                continue
            vector = combo + (pad,) * (vector_ops - filled)
            dist[vector] += probability
    return dist


def bdd_allocate_homes(stats: CaseStatistics,
                       num_modules: int) -> Tuple[int, ...]:
    """Allocate module homes by recursive demand splitting.

    The four cases form the leaves of a two-level decision diagram over
    the information bits.  Each case's *demand mass* is its expected
    number of arrivals per cycle; descending the diagram, the module
    budget is divided between the 0- and 1-cofactor in proportion to
    their mass (round-half-up toward the 0 side, so ties are
    deterministic), except that a cofactor carrying *any* positive mass
    keeps at least one module whenever the budget allows — every
    reachable branch of the diagram gets hardware, so a heavily skewed
    case mix cannot collapse the whole table onto one case.  Cases
    whose branch still gets no modules are routed to the nearest home
    by the table's matching step, exactly like overflow operations in
    the greedy family.
    """
    if num_modules < 1:
        raise ValueError("need at least one module")
    case_probs = stats.case_distribution()
    usage = stats.usage_distribution(num_modules)
    expected_width = sum(width * prob for width, prob in usage.items())
    demand = {case: expected_width * case_probs[case] for case in CASES}

    def split(budget: int, cases: Sequence[int]) -> List[int]:
        if budget == 0:
            return []
        if len(cases) == 1:
            return [cases[0]] * budget
        half = len(cases) // 2
        low, high = list(cases[:half]), list(cases[half:])
        mass_low = sum(demand[case] for case in low)
        mass_high = sum(demand[case] for case in high)
        total = mass_low + mass_high
        if total <= 0.0:
            budget_low = budget  # degenerate: park everything low
        else:
            budget_low = int(budget * mass_low / total + 0.5)
            if budget >= 2:
                if mass_low > 0.0:
                    budget_low = max(budget_low, 1)
                if mass_high > 0.0:
                    budget_low = min(budget_low, budget - 1)
        return (split(budget_low, low)
                + split(budget - budget_low, high))

    return tuple(sorted(split(num_modules, list(CASES))))


# ----- Popel information-measure variable ordering ----------------------------


def _entropy(masses: Mapping[Assignment, float]) -> float:
    """Shannon entropy of a value distribution given unnormalised mass."""
    total = sum(masses.values())
    if total <= 0.0:
        return 0.0
    entropy = 0.0
    for mass in masses.values():
        if mass > 0.0:
            p = mass / total
            entropy -= p * log2(p)
    return entropy


def _bit_of(vector: Vector, var: int) -> int:
    """Variable ``var`` is bit ``var % 2`` (high bit first) of slot
    ``var // 2`` — the wire order a hardware vector register presents."""
    slot, bit = divmod(var, 2)
    return (vector[slot] >> (1 - bit)) & 1


def order_variables(table: Mapping[Vector, Assignment],
                    dist: Mapping[Vector, float]) -> Tuple[int, ...]:
    """Greedy information-gain variable order (Popel's measures).

    At each step the chosen variable maximises the expected reduction
    in conditional entropy of the module assignment, summed over the
    contexts (vector subsets) the already-ordered variables induce and
    weighted by the case-vector distribution.  Ties break toward the
    lowest variable index, so the order is deterministic.
    """
    some_vector = next(iter(table))
    nvars = 2 * len(some_vector)
    weighted = [(vector, dist.get(vector, 0.0)) for vector in table]
    groups: List[List[Tuple[Vector, float]]] = [weighted]
    remaining = list(range(nvars))
    order: List[int] = []
    while remaining:
        best_var: Optional[int] = None
        best_gain = -1.0
        for var in remaining:
            gain = 0.0
            for group in groups:
                mass = sum(p for _v, p in group)
                if mass <= 0.0:
                    continue
                joint: Dict[Assignment, float] = {}
                sides: Tuple[Dict[Assignment, float], ...] = ({}, {})
                side_mass = [0.0, 0.0]
                for vector, p in group:
                    value = table[vector]
                    joint[value] = joint.get(value, 0.0) + p
                    side = _bit_of(vector, var)
                    sides[side][value] = sides[side].get(value, 0.0) + p
                    side_mass[side] += p
                conditional = sum(
                    (side_mass[b] / mass) * _entropy(sides[b])
                    for b in (0, 1) if side_mass[b] > 0.0)
                gain += mass * (_entropy(joint) - conditional)
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_var = var
        assert best_var is not None
        order.append(best_var)
        remaining.remove(best_var)
        next_groups: List[List[Tuple[Vector, float]]] = []
        for group in groups:
            halves: Tuple[list, list] = ([], [])
            for vector, p in group:
                halves[_bit_of(vector, best_var)].append((vector, p))
            next_groups.extend(half for half in halves if half)
        groups = next_groups
    return tuple(order)


# ----- reduced ordered (multi-terminal) BDD -----------------------------------


@dataclass(frozen=True)
class SteeringBDD:
    """A reduced ordered multi-terminal BDD of one steering table.

    ``nodes`` maps node ids to ``(var, lo_ref, hi_ref)`` where refs are
    either node ids or ``("leaf", assignment)`` terminals.  ``order``
    is the variable order the diagram was built under.
    """

    order: Tuple[int, ...]
    root: object
    nodes: Mapping[int, Tuple[int, object, object]]
    terminal_count: int

    @property
    def node_count(self) -> int:
        """Internal decision nodes (each one 2:1 mux in hardware)."""
        return len(self.nodes)

    @property
    def levels(self) -> int:
        """Longest root-to-terminal mux chain."""
        depth: Dict[object, int] = {}

        def walk(ref: object) -> int:
            if ref not in self.nodes:
                return 0
            cached = depth.get(ref)
            if cached is None:
                _var, lo, hi = self.nodes[ref]
                cached = 1 + max(walk(lo), walk(hi))
                depth[ref] = cached
            return cached

        return walk(self.root)

    def evaluate(self, vector: Vector) -> Assignment:
        """Walk the diagram for one case vector (parity check vs the
        table the diagram was built from)."""
        ref = self.root
        while ref in self.nodes:
            var, lo, hi = self.nodes[ref]
            ref = hi if _bit_of(vector, var) else lo
        return ref[1]  # ("leaf", assignment)


def build_bdd(table: Mapping[Vector, Assignment],
              order: Sequence[int]) -> SteeringBDD:
    """Reduce the table into an ordered multi-terminal BDD.

    Equal cofactors collapse (node elision) and structurally identical
    subdiagrams share (hash-consing), so ``node_count`` is the mux
    count of the direct hardware mapping.
    """
    some_vector = next(iter(table))
    vector_ops = len(some_vector)
    nvars = 2 * vector_ops
    if sorted(order) != list(range(nvars)):
        raise ValueError(f"order must permute the {nvars} vector bits")

    def value_at(index: int) -> Assignment:
        cases = [0] * vector_ops
        for depth, var in enumerate(order):
            bit = (index >> (nvars - 1 - depth)) & 1
            slot, b = divmod(var, 2)
            cases[slot] |= bit << (1 - b)
        return table[tuple(cases)]

    leaves = tuple(value_at(i) for i in range(1 << nvars))
    unique: Dict[tuple, object] = {}
    nodes: Dict[int, Tuple[int, object, object]] = {}
    terminals: Dict[Assignment, object] = {}

    def mk(depth: int, values: Tuple[Assignment, ...]) -> object:
        first = values[0]
        if all(value == first for value in values):
            return terminals.setdefault(first, ("leaf", first))
        half = len(values) // 2
        lo = mk(depth + 1, values[:half])
        hi = mk(depth + 1, values[half:])
        if lo == hi:
            return lo
        key = (order[depth], lo, hi)
        ref = unique.get(key)
        if ref is None:
            ref = len(nodes)
            unique[key] = ref
            nodes[ref] = key
        return ref

    root = mk(0, leaves)
    return SteeringBDD(order=tuple(order), root=root, nodes=nodes,
                       terminal_count=len(terminals))


# ----- synthesis entry points -------------------------------------------------


def build_bdd_lut(stats: CaseStatistics, num_modules: int,
                  vector_bits: int) -> SteeringLUT:
    """Synthesise the BDD family's steering table.

    Homes come from the demand-split diagram, the fill from the shared
    occupancy-weighted matcher — so the result is a plain
    :class:`SteeringLUT` every existing consumer (object evaluator,
    batch kernels, Verilog export, logic synthesis) understands.
    """
    if stats is None:
        raise ValueError("BDD policies need case statistics")
    homes = bdd_allocate_homes(stats, num_modules)
    return build_lut(stats, num_modules, vector_bits, homes=homes)


def synthesize_bdd(stats: CaseStatistics, num_modules: int,
                   vector_bits: int) -> Tuple[SteeringLUT, SteeringBDD]:
    """Full synthesis: the steering table plus its ordered diagram."""
    lut = build_bdd_lut(stats, num_modules, vector_bits)
    dist = vector_distribution(stats, num_modules, lut.vector_ops)
    order = order_variables(lut.table, dist)
    return lut, build_bdd(lut.table, order)


@dataclass(frozen=True)
class BDDCost:
    """Implementation cost of the BDD-mapped router control."""

    nodes: int              # decision nodes (2:1 muxes)
    gates: int              # muxes at 3 gates each + forwarding network
    levels: int             # mux chain depth + RS forwarding levels


def estimate_bdd_router_cost(stats: CaseStatistics, num_modules: int,
                             vector_bits: int, rs_entries: int) -> BDDCost:
    """Constructive cost of the BDD router, comparable with
    :func:`repro.core.logic.estimate_router_cost`: each decision node
    maps to a 2:1 mux (3 NAND-equivalents) and the information-bit
    forwarding network is the same ``3 * rs_entries + 19`` gate,
    ``log2(rs_entries)``-level model the two-level estimate charges."""
    if rs_entries < 1:
        raise ValueError("need at least one reservation station entry")
    _lut, bdd = synthesize_bdd(stats, num_modules, vector_bits)
    forwarding = 3 * rs_entries + 19
    levels = bdd.levels + max(1, round(log2(rs_entries)))
    return BDDCost(nodes=bdd.node_count,
                   gates=3 * bdd.node_count + forwarding,
                   levels=levels)


# ----- the policy and its registration ----------------------------------------


@dataclass
class BDDPolicy(LUTPolicy):
    """Stateless steering from a BDD-synthesised table.

    The runtime contract — memoised ``_assign_cases``, spare-module
    remap, padding — is inherited from :class:`LUTPolicy`; only the
    synthesis differs.  It is registered as its own family, so kernel
    resolution (exact-type match) routes it through the kernels
    registered *here*, never the greedy LUT's entries.
    """

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"bdd-{self.lut.vector_bits}bit"
        super().__post_init__()


def _build_bdd_policy(req: PolicyRequest) -> BDDPolicy:
    lut = build_bdd_lut(req.stats, req.num_modules, req.params["bits"])
    return BDDPolicy(lut=lut, scheme=req.scheme)


REGISTRY.register(PolicyFamily(
    name="bdd", syntax="bdd-<bits>",
    description="BDD-synthesised LUT steering (demand-split homes,"
                " Popel information-measure variable order)",
    parse=int_suffix("bdd-"), build=_build_bdd_policy,
    policy_types=(BDDPolicy,), needs_stats=True,
    grid_kinds=("bdd-4",), grid_order=40.0))


def _bdd_python_kernel(ev, cols):
    """Fused python kernel: the table contract is shared with the LUT
    family through ``LUTPolicy._assign_cases``, so the LUT kernel runs
    BDD tables unchanged.  Imported lazily — core must not import batch
    at module load (batch imports core)."""
    if ev.policy.scheme is not cols.scheme:
        return None
    from ..batch.kernels import _run_lut
    return lambda: _run_lut(ev, cols)


# python backend only: `--engine batch-np` falls through to this fused
# kernel, and any config the guard declines falls through to the object
# path — both legs of the registry's fall-through contract.
REGISTRY.register_kernel("bdd", "python", _bdd_python_kernel)
