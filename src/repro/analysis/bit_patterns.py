"""Bit-pattern statistics: reproduces Table 1 and Table 3.

:class:`BitPatternCollector` subscribes to a simulator's issue stream
and accumulates, for one FU class, the eight Table 1 rows — occurrence
frequency of each (operand-1 information bit, operand-2 information
bit, commutativity) combination, and the probability of any single bit
being high in each operand.  The same collector serves Table 3 (the
multiplier classes), whose published form merges the commutativity
split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cpu.trace import IssueGroup
from ..isa import encoding
from ..isa.instructions import FUClass
from ..core.info_bits import CASES, InfoBitScheme, scheme_for
from ..core.power import operand_width
from ..core.statistics import CaseStatistics

RowKey = Tuple[int, bool]  # (case, commutative)


@dataclass
class RowStats:
    """Accumulated statistics for one (case, commutativity) row."""

    count: int = 0
    ones_op1: int = 0
    ones_op2: int = 0

    def bit_prob(self, operand: int, width: int) -> float:
        """Probability that any single bit of the operand is high."""
        if not self.count:
            return 0.0
        ones = self.ones_op1 if operand == 0 else self.ones_op2
        return ones / (self.count * width)


class BitPatternCollector:
    """Issue listener accumulating Table 1 style rows for one FU class."""

    def __init__(self, fu_class: FUClass,
                 scheme: Optional[InfoBitScheme] = None,
                 include_speculative: bool = True):
        self.fu_class = fu_class
        self.scheme = scheme or scheme_for(fu_class)
        self.include_speculative = include_speculative
        self._width = operand_width(fu_class)
        self._mask = (1 << self._width) - 1
        self.rows: Dict[RowKey, RowStats] = {
            (case, commutative): RowStats()
            for case in CASES for commutative in (True, False)}
        self.total_ops = 0

    def __call__(self, group: IssueGroup) -> None:
        if group.fu_class is not self.fu_class:
            return
        for op in group.ops:
            if op.speculative and not self.include_speculative:
                continue
            op2 = op.op2 if op.has_two else 0
            case = self.scheme.case_of(op.op1, op2)
            row = self.rows[(case, op.op.hardware_swappable)]
            row.count += 1
            row.ones_op1 += encoding.popcount(op.op1 & self._mask)
            row.ones_op2 += encoding.popcount(op2 & self._mask)
            self.total_ops += 1

    # ----- views -----------------------------------------------------------

    def frequency(self, case: int, commutative: bool) -> float:
        """Fraction of all operations in one Table 1 row."""
        if not self.total_ops:
            return 0.0
        return self.rows[(case, commutative)].count / self.total_ops

    def case_frequency(self, case: int) -> float:
        """Fraction of operations with this case (rows merged)."""
        return self.frequency(case, True) + self.frequency(case, False)

    def bit_prob(self, case: int, commutative: bool, operand: int) -> float:
        return self.rows[(case, commutative)].bit_prob(operand, self._width)

    def merged_bit_prob(self, case: int, operand: int) -> float:
        """Bit probability with commutativity rows merged (Table 3 form)."""
        merged = RowStats()
        for commutative in (True, False):
            row = self.rows[(case, commutative)]
            merged.count += row.count
            merged.ones_op1 += row.ones_op1
            merged.ones_op2 += row.ones_op2
        return merged.bit_prob(operand, self._width)

    def merge(self, other: "BitPatternCollector") -> None:
        """Fold another collector's counts into this one (suite totals)."""
        if other.fu_class is not self.fu_class:
            raise ValueError("cannot merge collectors of different FU classes")
        for key, row in other.rows.items():
            mine = self.rows[key]
            mine.count += row.count
            mine.ones_op1 += row.ones_op1
            mine.ones_op2 += row.ones_op2
        self.total_ops += other.total_ops

    def to_case_frequencies(self) -> Dict[RowKey, float]:
        if not self.total_ops:
            return {key: 0.0 for key in self.rows}
        return {key: row.count / self.total_ops
                for key, row in self.rows.items()}

    def table_rows(self) -> List[Tuple[str, str, str, float, float, float]]:
        """Rows in the paper's Table 1 layout:
        (op1 bit, op2 bit, commutative, freq %, P(op1 bit), P(op2 bit))."""
        rows = []
        for case in CASES:
            for commutative in (True, False):
                rows.append((
                    str((case >> 1) & 1), str(case & 1),
                    "Yes" if commutative else "No",
                    100.0 * self.frequency(case, commutative),
                    self.bit_prob(case, commutative, 0),
                    self.bit_prob(case, commutative, 1),
                ))
        return rows

    def to_statistics(self, usage: Dict[int, float]) -> CaseStatistics:
        """Bundle with a usage distribution into a CaseStatistics."""
        return CaseStatistics(self.fu_class, self.to_case_frequencies(),
                              usage)
