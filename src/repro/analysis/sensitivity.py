"""Profile-input sensitivity of compiler swapping (section 4.4).

The paper's second compiler-swapping disadvantage: "since the program
must be profiled, performance will vary somewhat for different input
patterns."  This study quantifies that: a workload is profiled at one
scale (one input) and the resulting static swap decisions are applied
to the same code running at another scale (a different input), then
compared against self-profiled swapping and no swapping at all.

Workload builders embed the scale only in data and trip counts, so the
static code is identical across scales and swap decisions transfer by
static instruction index (checked, not assumed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..compiler.profiling import profile_program
from ..compiler.swap_pass import apply_swapping
from ..cpu.config import MachineConfig, default_config
from ..cpu.simulator import Simulator
from ..core.info_bits import scheme_for
from ..core.statistics import CaseStatistics
from ..core.steering import OriginalPolicy, PolicyEvaluator, make_policy
from ..core.swapping import HardwareSwapper, choose_swap_case
from ..isa.instructions import FUClass
from ..workloads.base import workload


@dataclass
class SensitivityResult:
    """Reductions vs the unswapped baseline for one workload."""

    workload: str
    fu_class: FUClass
    train_scale: int
    test_scale: int
    baseline_bits: int
    unswapped_reduction: float      # steering only
    self_profiled_reduction: float  # steering + swap trained on test input
    cross_profiled_reduction: float  # steering + swap trained elsewhere

    @property
    def transfer_penalty(self) -> float:
        """How much reduction the stale profile costs vs self-profiling."""
        return self.self_profiled_reduction - self.cross_profiled_reduction


def profile_transfer_study(name: str, fu_class: FUClass,
                           train_scale: int = 1, test_scale: int = 3,
                           stats: Optional[CaseStatistics] = None,
                           config: Optional[MachineConfig] = None
                           ) -> SensitivityResult:
    """Measure swap-decision transfer from one input to another."""
    config = config or default_config()
    load = workload(name)
    test_program = load.build(test_scale)
    train_program = load.build(train_scale)
    if len(train_program) != len(test_program):
        raise ValueError(
            f"{name}: code differs between scales {train_scale} and"
            f" {test_scale}; profiles cannot transfer by index")

    if stats is None:
        from .energy import measure_statistics
        stats, _, _ = measure_statistics([test_program], fu_class, config)
    scheme = scheme_for(fu_class)
    swap_case = choose_swap_case(stats)
    from ..compiler.swap_pass import denser_first_from_swap_case
    direction = {fu_class: denser_first_from_swap_case(swap_case)}

    self_profile = profile_program(test_program)
    cross_profile = profile_program(train_program)
    self_swapped, _ = apply_swapping(test_program, self_profile,
                                     denser_first=direction)
    cross_swapped, _ = apply_swapping(test_program, cross_profile,
                                      denser_first=direction)

    num_modules = config.modules(fu_class)

    def evaluate(program, with_hw_swap):
        policy = make_policy("lut-4", fu_class, num_modules, stats=stats,
                             scheme=scheme)
        swapper = (HardwareSwapper(scheme, swap_case)
                   if with_hw_swap else None)
        steered = PolicyEvaluator(fu_class, num_modules, policy,
                                  pre_swapper=swapper)
        baseline = PolicyEvaluator(fu_class, num_modules, OriginalPolicy())
        sim = Simulator(program, config)
        sim.add_listener(steered)
        sim.add_listener(baseline)
        sim.run()
        return (steered.totals().switched_bits,
                baseline.totals().switched_bits)

    plain_bits, baseline_bits = evaluate(test_program, with_hw_swap=False)
    self_bits, _ = evaluate(self_swapped, with_hw_swap=True)
    cross_bits, _ = evaluate(cross_swapped, with_hw_swap=True)

    def reduction(bits):
        return 1.0 - bits / baseline_bits if baseline_bits else 0.0

    return SensitivityResult(
        workload=name, fu_class=fu_class,
        train_scale=train_scale, test_scale=test_scale,
        baseline_bits=baseline_bits,
        unswapped_reduction=reduction(plain_bits),
        self_profiled_reduction=reduction(self_bits),
        cross_profiled_reduction=reduction(cross_bits))


def run_sensitivity_suite(fu_class: FUClass, names=None,
                          train_scale: int = 1, test_scale: int = 3
                          ) -> Dict[str, SensitivityResult]:
    """Transfer study over several workloads (skipping any whose code
    is not scale-invariant)."""
    from ..workloads.base import float_suite, integer_suite
    if names is None:
        suite = integer_suite() if fu_class is FUClass.IALU \
            else float_suite()
        names = [w.name for w in suite]
    results = {}
    for name in names:
        try:
            results[name] = profile_transfer_study(
                name, fu_class, train_scale=train_scale,
                test_scale=test_scale)
        except ValueError:
            continue
    return results
