"""The paper's published numbers, for side-by-side comparison.

Only values actually printed in the paper are recorded; Figure 4 is a
bar chart, so beyond the numbers quoted in the text (17% IALU, 18%
FPAU for the 4-bit LUT with hardware swapping; 26% IALU with compiler
swapping) we record the *ordering constraints* the figure and its
discussion establish, which is what the reproduction is expected to
match in shape.
"""

from __future__ import annotations

from ..isa.instructions import FUClass

# --- Table 1 (operand bit patterns), columns:
# (case, commutative) -> (freq %, P(op1 bit high), P(op2 bit high))
PAPER_TABLE1 = {
    FUClass.IALU: {
        (0b00, True): (40.11, 0.123, 0.068),
        (0b00, False): (29.38, 0.078, 0.040),
        (0b01, True): (9.56, 0.175, 0.594),
        (0b01, False): (0.58, 0.109, 0.820),
        (0b10, True): (17.07, 0.608, 0.089),
        (0b10, False): (1.51, 0.643, 0.048),
        (0b11, True): (1.52, 0.703, 0.822),
        (0b11, False): (0.27, 0.663, 0.719),
    },
    FUClass.FPAU: {
        (0b00, True): (16.79, 0.099, 0.094),
        (0b00, False): (10.28, 0.107, 0.158),
        (0b01, True): (15.64, 0.188, 0.522),
        (0b01, False): (4.90, 0.132, 0.514),
        (0b10, True): (5.92, 0.513, 0.190),
        (0b10, False): (4.22, 0.500, 0.188),
        (0b11, True): (31.00, 0.508, 0.502),
        (0b11, False): (11.25, 0.507, 0.506),
    },
}

# Derived facts quoted in section 4.2
PAPER_INT_P_ZERO_GIVEN_SIGN0 = 0.912   # "when the top bit is 0, so are 91.2%"
PAPER_INT_P_ONE_GIVEN_SIGN1 = 0.637    # "when this bit is 1, so are 63.7%"
PAPER_FP_ZERO_LOW4_FRACTION = 0.424    # operands with zero bottom-4 bits
PAPER_FP_P_ZERO_GIVEN_INFO0 = 0.865    # zeros among bits when info bit is 0

# --- Table 2 (modules used per busy cycle, %) --------------------------------
PAPER_TABLE2 = {
    FUClass.IALU: {1: 40.3, 2: 36.2, 3: 19.4, 4: 4.2},
    FUClass.FPAU: {1: 90.2, 2: 9.2, 3: 0.5, 4: 0.1},
}

# --- Table 3 (multiplication bit patterns), case -> (freq %, P1, P2) ---------
PAPER_TABLE3 = {
    FUClass.IMULT: {
        0b00: (93.79, 0.116, 0.056),
        0b01: (1.07, 0.055, 0.956),
        0b10: (2.76, 0.838, 0.076),
        0b11: (2.38, 0.710, 0.909),
    },
    FUClass.FPMULT: {
        0b00: (20.12, 0.139, 0.095),
        0b01: (15.52, 0.160, 0.511),
        0b10: (21.29, 0.527, 0.090),
        0b11: (43.07, 0.274, 0.271),
    },
}

# fraction of FP multiplications swappable from case 01 to 10 (section 4.4)
PAPER_FPMULT_SWAPPABLE_01 = 0.155

# --- Figure 4 quoted results (%, energy reduction vs Original/no swap) -------
PAPER_HEADLINE = {
    # (FU class, scheme, swapping) -> reduction %
    (FUClass.IALU, "lut-4", "hw"): 17.0,
    (FUClass.IALU, "lut-4", "hw+compiler"): 26.0,
    (FUClass.FPAU, "lut-4", "hw"): 18.0,
}

# execution units consume ~22% of chip power (Wattch, [4]); the paper
# scales its FU-level gains by this to a ~4% whole-chip estimate
PAPER_EXEC_UNIT_CHIP_POWER_FRACTION = 0.22

# Ordering constraints established by Figure 4 and its discussion:
# for each FU class, left-to-right scheme order is non-increasing in
# achievable reduction, and swapping adds on top (strongly for the
# IALU, weakly for the FPAU).
PAPER_SCHEME_ORDER = ("full-ham", "1bit-ham", "lut-8", "lut-4", "lut-2",
                      "original")
