"""Per-module load and activity concentration analysis.

The paper motivates FU power partly through power *density*: "the
execution core is one of the hot-spots of power density within the
processor, and is at a risk of burn out."  Steering deliberately
concentrates same-case traffic onto home modules, which lowers total
switching but *redistributes* it — this analysis quantifies that
redistribution so a designer can see both effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.power import FUPowerModel
from ..core.steering import PolicyEvaluator


@dataclass
class ModuleLoad:
    """Per-module operation and switching shares for one evaluator."""

    policy: str
    operations: List[int]
    switched_bits: List[int]

    @property
    def total_operations(self) -> int:
        return sum(self.operations)

    @property
    def total_bits(self) -> int:
        return sum(self.switched_bits)

    def operation_share(self, module: int) -> float:
        total = self.total_operations
        return self.operations[module] / total if total else 0.0

    def bits_share(self, module: int) -> float:
        total = self.total_bits
        return self.switched_bits[module] / total if total else 0.0

    @property
    def max_bits_share(self) -> float:
        """The hottest module's share of total switching — the power-
        density proxy."""
        if not self.total_bits:
            return 0.0
        return max(self.switched_bits) / self.total_bits

    def imbalance(self) -> float:
        """Ratio of the hottest module's switching to the uniform share."""
        count = len(self.switched_bits)
        if not self.total_bits or not count:
            return 1.0
        return self.max_bits_share * count


class LoadTrackingPowerModel(FUPowerModel):
    """FUPowerModel that additionally tracks per-module totals."""

    def __init__(self, fu_class, num_modules):
        super().__init__(fu_class, num_modules)
        self.per_module_ops = [0] * num_modules
        self.per_module_bits = [0] * num_modules

    def account(self, module: int, op1: int, op2: int) -> int:
        cost = super().account(module, op1, op2)
        self.per_module_ops[module] += 1
        self.per_module_bits[module] += cost
        return cost


def attach_load_tracking(evaluator: PolicyEvaluator) -> PolicyEvaluator:
    """Swap an evaluator's power model for a load-tracking one."""
    tracking = LoadTrackingPowerModel(evaluator.fu_class,
                                      evaluator.power.num_modules)
    evaluator.power = tracking
    return evaluator


def module_load(evaluator: PolicyEvaluator) -> ModuleLoad:
    """Extract the per-module load after a run."""
    power = evaluator.power
    if not isinstance(power, LoadTrackingPowerModel):
        raise TypeError("evaluator was not load-tracked; call"
                        " attach_load_tracking before running")
    return ModuleLoad(policy=evaluator.label,
                      operations=list(power.per_module_ops),
                      switched_bits=list(power.per_module_bits))


def render_module_load(loads: Sequence[ModuleLoad]) -> str:
    """Per-module share table for several policies side by side."""
    lines = ["Per-module activity distribution"]
    for load in loads:
        modules = len(load.operations)
        ops = " ".join(f"{100 * load.operation_share(m):5.1f}%"
                       for m in range(modules))
        bits = " ".join(f"{100 * load.bits_share(m):5.1f}%"
                        for m in range(modules))
        lines.append(f"  {load.policy:16s} ops  [{ops}]")
        lines.append(f"  {'':16s} bits [{bits}]"
                     f"  hottest x{load.imbalance():.2f} of uniform")
    return "\n".join(lines)
