"""Parallel Figure 4 generation: per-workload fan-out, ordered merge.

``run_figure4(..., jobs=N)`` lands here.  The suite is split one
workload per task and executed on the campaign runner's
:class:`~repro.runner.pool.ProcessTaskPool` (same crash isolation,
timeouts, and retry/backoff), in two phases sharing one trace cache:

1. **statistics** — each worker simulates (or replays) its workload and
   returns the bit-pattern/module-usage partials; the parent folds them
   into suite-wide :class:`~repro.core.statistics.CaseStatistics`.
   Skipped entirely for ``stats_source="paper"``.
2. **cells** — each worker replays its workload (and its
   compiler-swapped rewrite) through the full evaluator grid, exactly
   the per-program body of the serial driver, and returns integer cell
   totals.

**Byte-stability**: every partial is a sum of integers, and the parent
merges results in workload order — never arrival order — so the final
:class:`~repro.analysis.energy.Figure4Result` is identical whatever the
job count or scheduling jitter.  Workers share the content-addressed
trace cache (a private temporary one when the caller has none), so each
program version is still simulated exactly once across both phases.

A workload whose task fails all its retries raises ``RuntimeError``
naming every failed workload — a partial panel silently missing suite
members would be worse than no panel.
"""

from __future__ import annotations

import tempfile
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..core.statistics import CaseStatistics, paper_statistics
from ..core.swapping import choose_swap_case
from ..compiler import swap_optimize
from ..cpu.config import MachineConfig, default_config
from ..core.info_bits import InfoBitScheme, scheme_for
from ..isa.instructions import FUClass
from ..runner.pool import PoolItem, ProcessTaskPool
from ..workloads.base import Workload, float_suite, integer_suite
from .bit_patterns import BitPatternCollector
from .module_usage import ModuleUsageCollector
from . import energy as _energy


# ----- worker side (top-level, so the spawn start method can pickle) ---------


def _resolve_scheme(payload: Dict[str, Any]) -> Optional[InfoBitScheme]:
    # schemes are identity-compared singletons, so workers rebuild the
    # default from the FU class rather than unpickling a copy; only a
    # caller-supplied custom scheme ships as an object
    return payload["scheme"] or scheme_for(FUClass(payload["fu"]))


def _stats_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Phase 1: one workload's Table 1/2 partials (and a cache entry)."""
    from ..workloads import workload as get_workload
    fu_class = FUClass(payload["fu"])
    config = payload["config"]
    scheme = _resolve_scheme(payload)
    program = get_workload(payload["workload"]).build(payload["scale"])
    stream, hit = _energy._captured_stream(program, config, fu_class,
                                           payload["cache_dir"],
                                           payload["engine"])
    patterns = BitPatternCollector(fu_class, scheme=scheme)
    usage = ModuleUsageCollector([fu_class])
    _energy.drive_stream(stream, [patterns, usage])
    return {
        "hit": bool(hit),
        "total_ops": patterns.total_ops,
        "rows": {key: (row.count, row.ones_op1, row.ones_op2)
                 for key, row in patterns.rows.items()},
        "usage": {fu.value: dict(widths)
                  for fu, widths in usage.counts.items()},
    }


def _cells_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Phase 2: one workload through the full (scheme × swap) grid —
    the per-program body of the serial ``run_figure4``, verbatim."""
    from ..compiler.swap_pass import denser_first_from_swap_case
    from ..workloads import workload as get_workload
    fu_class = FUClass(payload["fu"])
    config = payload["config"]
    scheme = _resolve_scheme(payload)
    stats: CaseStatistics = payload["stats"]
    schemes: Sequence[str] = payload["schemes"]
    swap_modes: Sequence[str] = payload["swap_modes"]
    num_modules = config.modules(fu_class)
    program = get_workload(payload["workload"]).build(payload["scale"])

    result = _energy.Figure4Result(fu_class=fu_class,
                                   workload_names=[payload["workload"]],
                                   statistics=stats)
    stream, plain_hit = _energy._captured_stream(program, config, fu_class,
                                                 payload["cache_dir"],
                                                 payload["engine"])
    plain_modes = [m for m in ("none", "hw") if m in swap_modes]
    if "none" not in plain_modes:
        plain_modes.append("none")  # the baseline cell is always needed
    _energy._evaluate_modes(stream, program.name, fu_class, num_modules,
                            stats, scheme, schemes, plain_modes, result)
    compiler_hit: Optional[bool] = None
    if any("compiler" in m for m in swap_modes):
        direction = {fu_class:
                     denser_first_from_swap_case(choose_swap_case(stats))}
        swapped, _report = swap_optimize(program, denser_first=direction)
        compiler_modes = [m for m in ("compiler", "hw+compiler")
                          if m in swap_modes]
        sw_stream, compiler_hit = _energy._captured_stream(
            swapped, config, fu_class, payload["cache_dir"],
            payload["engine"])
        _energy._evaluate_modes(sw_stream, swapped.name, fu_class,
                                num_modules, stats, scheme, schemes,
                                compiler_modes, result)
    return {
        "plain_hit": bool(plain_hit),
        "compiler_hit": compiler_hit,
        "cells": [(kind, mode, cell.switched_bits, cell.operations,
                   cell.hardware_swaps)
                  for (kind, mode), cell in result.cells.items()],
        "per_workload": [(kind, mode, bits)
                         for (kind, mode), bits
                         in result.per_workload[payload["workload"]].items()],
    }


# ----- the parent-side runner -------------------------------------------------


class ParallelFigureRunner:
    """Fans one Figure 4 panel across a worker-process pool."""

    def __init__(self, jobs: int = 2, task_timeout: float = 1800.0,
                 retries: int = 1, backoff: float = 0.5):
        self.jobs = max(1, jobs)
        self.task_timeout = task_timeout
        self.retries = retries
        self.backoff = backoff

    def _pool(self, worker) -> ProcessTaskPool:
        return ProcessTaskPool(worker, max_workers=self.jobs,
                               task_timeout=self.task_timeout,
                               retries=self.retries, backoff=self.backoff)

    def _fan_out(self, worker, payloads: List[Dict[str, Any]]
                 ) -> List[Dict[str, Any]]:
        """Run one payload per workload; results in *payload* order."""
        results: Dict[str, Any] = {}
        failures: Dict[str, str] = {}
        items = [PoolItem(key=p["workload"], payload=p) for p in payloads]

        def on_done(item: PoolItem, elapsed: float, payload: Any) -> None:
            results[item.key] = payload

        def on_failed(item: PoolItem, elapsed: float,
                      error: Dict[str, Any]) -> None:
            failures[item.key] = (f"{error.get('type', 'Error')}:"
                                  f" {error.get('message', '')}")

        self._pool(worker).run(items, on_done, on_failed)
        if failures:
            detail = "; ".join(f"{name} ({reason})"
                               for name, reason in sorted(failures.items()))
            raise RuntimeError(f"figure4 workload tasks failed: {detail}")
        return [results[p["workload"]] for p in payloads]

    def run_figure4(self, fu_class: FUClass,
                    workloads: Optional[Iterable[Workload]] = None,
                    scale: Optional[int] = None,
                    config: Optional[MachineConfig] = None,
                    stats_source: str = "measured",
                    schemes: Sequence[str] = _energy.SCHEMES,
                    swap_modes: Sequence[str] = ("none", "hw",
                                                 "hw+compiler"),
                    scheme: Optional[InfoBitScheme] = None,
                    trace_cache_dir=None,
                    engine: str = "auto",
                    trace_cache_limit_mb: Optional[float] = None
                    ) -> "_energy.Figure4Result":
        """The parallel twin of :func:`repro.analysis.energy.run_figure4`
        — same arguments, bit-identical result."""
        # resolved here (not just in run_figure4) so workers receive a
        # concrete engine whatever entry point the caller used
        engine = _energy.resolve_engine(engine)
        if stats_source not in ("measured", "paper"):
            raise ValueError("stats_source must be 'measured' or 'paper'")
        config = config or default_config()
        if workloads is None:
            workloads = (integer_suite() if fu_class is FUClass.IALU
                         else float_suite())
        workloads = list(workloads)
        # all phases (and all workers) share one cache so every program
        # version simulates exactly once; a caller with no cache gets a
        # private temporary one for the duration of the run
        scratch: Optional[tempfile.TemporaryDirectory] = None
        cache_dir = trace_cache_dir
        if cache_dir is None:
            scratch = tempfile.TemporaryDirectory(prefix="repro-figure4-")
            cache_dir = scratch.name
        try:
            return self._run(fu_class, workloads, scale, config,
                             stats_source, schemes, swap_modes, scheme,
                             cache_dir, engine,
                             external_cache=trace_cache_dir is not None,
                             trace_cache_limit_mb=trace_cache_limit_mb)
        finally:
            if scratch is not None:
                scratch.cleanup()

    def _run(self, fu_class, workloads, scale, config, stats_source,
             schemes, swap_modes, scheme, cache_dir, engine,
             external_cache: bool,
             trace_cache_limit_mb: Optional[float]
             ) -> "_energy.Figure4Result":
        base = {"fu": fu_class.value, "scale": scale, "config": config,
                "scheme": scheme, "cache_dir": str(cache_dir),
                "engine": engine}
        payloads = [dict(base, workload=w.name) for w in workloads]

        stats_hits = None
        if stats_source == "paper":
            stats = paper_statistics(fu_class)
        else:
            partials = self._fan_out(_stats_worker, payloads)
            stats = self._merge_statistics(fu_class, config, scheme,
                                           partials)
            stats_hits = [p["hit"] for p in partials]

        cell_payloads = [dict(p, stats=stats, schemes=tuple(schemes),
                              swap_modes=tuple(swap_modes))
                         for p in payloads]
        outcomes = self._fan_out(_cells_worker, cell_payloads)

        result = _energy.Figure4Result(
            fu_class=fu_class, workload_names=[w.name for w in workloads],
            statistics=stats)
        hits = misses = 0
        for index, outcome in enumerate(outcomes):
            # the first touch of each unmodified program happened in
            # phase 1 when it ran, so provenance counters match the
            # serial driver's (phase 2 always re-hits the shared cache)
            plain_hit = (stats_hits[index] if stats_hits is not None
                         else outcome["plain_hit"])
            hits += plain_hit
            misses += not plain_hit
            if outcome["compiler_hit"] is not None:
                hits += outcome["compiler_hit"]
                misses += not outcome["compiler_hit"]
            for kind, mode, bits, ops, swaps in outcome["cells"]:
                cell = result.cells.setdefault(
                    (kind, mode), _energy.CellResult(kind, mode))
                cell.switched_bits += bits
                cell.operations += ops
                cell.hardware_swaps += swaps
            name = workloads[index].name
            breakdown = result.per_workload.setdefault(name, {})
            for kind, mode, bits in outcome["per_workload"]:
                breakdown[(kind, mode)] = breakdown.get((kind, mode), 0) \
                    + bits
        result.cache_hits = hits if external_cache else 0
        result.cache_misses = misses if external_cache else 0
        result.simulations = misses
        if external_cache and trace_cache_limit_mb is not None:
            from pathlib import Path
            from ..compiler.swap_pass import denser_first_from_swap_case
            from ..streams import prune_trace_cache, trace_cache_key
            used = [w.build(scale) for w in workloads]
            if any("compiler" in m for m in swap_modes):
                direction = {fu_class: denser_first_from_swap_case(
                    choose_swap_case(stats))}
                used.extend(swap_optimize(p, denser_first=direction)[0]
                            for p in list(used))
            protect = [Path(cache_dir) / (
                trace_cache_key(p, config, (fu_class,)) + ".trace.gz")
                for p in used]
            prune_trace_cache(cache_dir, trace_cache_limit_mb,
                              protect=protect)
        return result

    @staticmethod
    def _merge_statistics(fu_class: FUClass, config: MachineConfig,
                          scheme: Optional[InfoBitScheme],
                          partials: List[Dict[str, Any]]) -> CaseStatistics:
        """Fold the workers' integer partials into suite statistics —
        associative sums, folded in workload order."""
        patterns = BitPatternCollector(fu_class, scheme=scheme)
        usage = ModuleUsageCollector([fu_class])
        for partial in partials:
            patterns.total_ops += partial["total_ops"]
            for key, (count, ones1, ones2) in partial["rows"].items():
                row = patterns.rows[key]
                row.count += count
                row.ones_op1 += ones1
                row.ones_op2 += ones2
            for fu_value, widths in partial["usage"].items():
                per_class = usage.counts.setdefault(FUClass(fu_value), {})
                for width, count in widths.items():
                    per_class[width] = per_class.get(width, 0) + count
        distribution = usage.distribution(
            fu_class, max_width=config.modules(fu_class))
        return patterns.to_statistics(distribution)


__all__ = ["ParallelFigureRunner"]
