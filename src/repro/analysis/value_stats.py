"""Section 4.2's derived value statistics.

Beyond Table 1, the paper quotes four derived numbers that justify the
information bits:

* integers — "when the top bit is 0, so are 91.2% of the bits, and
  when this bit is 1, so are 63.7% of the bits";
* floating point — "42.4% of floating point operands have zeroes in
  their bottom 4 bits", of which 3.8pp are full-precision accidents
  and 38.6pp genuinely trail zeros; and "when the bottom four bits are
  zero, 86.5% of the bits are zero".

:class:`ValueStatsCollector` measures the same quantities from any
issue stream so they can be compared directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..cpu.trace import IssueGroup
from ..isa import encoding
from ..isa.instructions import FUClass
from ..core.info_bits import FLOAT_CLASSES
from ..core.power import operand_width


@dataclass
class _Bucket:
    operands: int = 0
    matching_bits: int = 0  # bits equal to the information bit's value


class ValueStatsCollector:
    """Issue listener measuring section 4.2's conditional statistics."""

    def __init__(self, fu_class: FUClass):
        self.fu_class = fu_class
        self._is_float = fu_class in FLOAT_CLASSES
        self._width = operand_width(fu_class)
        self._mask = (1 << self._width) - 1
        self.by_info_bit = {0: _Bucket(), 1: _Bucket()}

    def _observe_operand(self, bits: int) -> None:
        if self._is_float:
            info = 1 if bits & 0xF else 0
            ones = encoding.popcount(bits & self._mask)
        else:
            info = (bits >> 31) & 1
            ones = encoding.popcount(bits & self._mask)
        bucket = self.by_info_bit[info]
        bucket.operands += 1
        bucket.matching_bits += ones if info else self._width - ones

    def __call__(self, group: IssueGroup) -> None:
        if group.fu_class is not self.fu_class:
            return
        for op in group.ops:
            self._observe_operand(op.op1)
            if op.has_two:
                self._observe_operand(op.op2)

    # ----- the paper's derived quantities ------------------------------------

    @property
    def total_operands(self) -> int:
        return sum(bucket.operands for bucket in self.by_info_bit.values())

    def info_bit_fraction(self, info: int) -> float:
        """Fraction of operands whose information bit is ``info``.

        For FP with ``info == 0`` this is the paper's "42.4% of
        operands have zeroes in their bottom 4 bits".
        """
        if not self.total_operands:
            return 0.0
        return self.by_info_bit[info].operands / self.total_operands

    def match_probability(self, info: int) -> float:
        """P(a bit equals the information bit's predicted value | info).

        The paper's 91.2% (integers, info 0), 63.7% (integers, info 1)
        and 86.5% (FP, info 0) are instances of this.
        """
        bucket = self.by_info_bit[info]
        if not bucket.operands:
            return 0.0
        return bucket.matching_bits / (bucket.operands * self._width)

    def fp_accidental_full_precision(self) -> float:
        """The paper's 3.8%: full-precision operands whose bottom four
        bits happen to be zero, estimated exactly as in section 4.2
        (one fifteenth of the info-bit-1 population)."""
        if self._is_float:
            return self.info_bit_fraction(1) / 15.0
        raise ValueError("defined for floating point classes only")

    def fp_genuine_trailing_zero_fraction(self) -> float:
        """The paper's 38.6%: info-bit-0 operands minus the accidental
        full-precision estimate."""
        return self.info_bit_fraction(0) - self.fp_accidental_full_precision()


def render_value_stats(int_stats: ValueStatsCollector,
                       fp_stats: ValueStatsCollector) -> str:
    """Side-by-side report of the section 4.2 derived quantities."""
    lines = ["Section 4.2 derived value statistics (measured vs paper)"]
    lines.append(f"  int P(bit=0 | sign=0):   "
                 f"{100 * int_stats.match_probability(0):5.1f}%   (paper 91.2%)")
    lines.append(f"  int P(bit=1 | sign=1):   "
                 f"{100 * int_stats.match_probability(1):5.1f}%   (paper 63.7%)")
    lines.append(f"  fp  P(low4 == 0):        "
                 f"{100 * fp_stats.info_bit_fraction(0):5.1f}%   (paper 42.4%)")
    lines.append(f"  fp  genuine trailing-0s: "
                 f"{100 * fp_stats.fp_genuine_trailing_zero_fraction():5.1f}%"
                 f"   (paper 38.6%)")
    lines.append(f"  fp  P(bit=0 | low4==0):  "
                 f"{100 * fp_stats.match_probability(0):5.1f}%   (paper 86.5%)")
    return "\n".join(lines)
