"""Multiplier swapping experiments (section 4.4, Table 3).

The paper cannot quantify multiplier power (no high-level Booth model),
so it reports *potential*: the fraction of multiplications whose case
can be swapped from 01 to 10.  We reproduce that, and additionally —
because this library ships shift-add and Booth activity models — report
the add-count reduction each swapping mode actually achieves under
those models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..cpu.config import MachineConfig, default_config
from ..cpu.simulator import Simulator
from ..cpu.trace import IssueGroup
from ..core.info_bits import case_of, scheme_for
from ..core.power import MultiplierActivityModel
from ..core.swapping import MultiplierSwapper, SwapMode
from ..isa.instructions import FUClass
from ..workloads.base import Workload, all_workloads


@dataclass
class MultiplierExperimentResult:
    """Case mix and activity-model outcomes for one multiplier class."""

    fu_class: FUClass
    operations: int
    case_counts: Dict[int, int]
    swappable_01: int
    # activity totals: mode name -> (switched bits, partial-product adds)
    activity: Dict[str, Tuple[int, int]]

    def case_fraction(self, case: int) -> float:
        if not self.operations:
            return 0.0
        return self.case_counts.get(case, 0) / self.operations

    @property
    def swappable_01_fraction(self) -> float:
        """Fraction of multiplies swappable from case 01 to 10."""
        if not self.operations:
            return 0.0
        return self.swappable_01 / self.operations

    def adds_reduction(self, mode: str) -> float:
        """Partial-product add reduction of a swap mode vs no swapping."""
        base = self.activity["none"][1]
        if not base:
            return 0.0
        return 1.0 - self.activity[mode][1] / base


class _MultiplierListener:
    """Scores one multiplier class under several swap modes at once."""

    def __init__(self, fu_class: FUClass, use_booth: bool):
        self.fu_class = fu_class
        self.scheme = scheme_for(fu_class)
        self.case_counts: Dict[int, int] = {}
        self.operations = 0
        self.swappable_01 = 0
        self.models: Dict[str, MultiplierActivityModel] = {
            mode: MultiplierActivityModel(fu_class, use_booth=use_booth)
            for mode in ("none", "info-bit", "popcount", "booth")}
        self.swappers = {
            "info-bit": MultiplierSwapper(self.scheme, SwapMode.INFO_BIT),
            "popcount": MultiplierSwapper(self.scheme, SwapMode.POPCOUNT),
            "booth": MultiplierSwapper(self.scheme, SwapMode.BOOTH),
        }

    def __call__(self, group: IssueGroup) -> None:
        if group.fu_class is not self.fu_class:
            return
        for op in group.ops:
            case = case_of(op, self.scheme)
            self.case_counts[case] = self.case_counts.get(case, 0) + 1
            self.operations += 1
            if case == 0b01 and op.hardware_swappable:
                self.swappable_01 += 1
            self.models["none"].account(op.op1, op.op2)
            for mode, swapper in self.swappers.items():
                swapped = swapper(op)
                self.models[mode].account(swapped.op1, swapped.op2)

    def result(self) -> MultiplierExperimentResult:
        return MultiplierExperimentResult(
            fu_class=self.fu_class,
            operations=self.operations,
            case_counts=dict(self.case_counts),
            swappable_01=self.swappable_01,
            activity={mode: (model.switched_bits, model.adds)
                      for mode, model in self.models.items()})


def run_multiplier_experiment(
        workloads: Optional[Iterable[Workload]] = None,
        scale: Optional[int] = None,
        config: Optional[MachineConfig] = None,
        use_booth: bool = True
        ) -> Dict[FUClass, MultiplierExperimentResult]:
    """Table 3 plus activity-model swapping outcomes, both multipliers."""
    config = config or default_config()
    if workloads is None:
        workloads = all_workloads()
    listeners = {
        FUClass.IMULT: _MultiplierListener(FUClass.IMULT, use_booth),
        FUClass.FPMULT: _MultiplierListener(FUClass.FPMULT, use_booth),
    }
    for workload in workloads:
        program = workload.build(scale)
        sim = Simulator(program, config)
        for listener in listeners.values():
            sim.add_listener(listener)
        sim.run()
    return {fu: listener.result() for fu, listener in listeners.items()}
