"""Text rendering of reproduced tables and figures, paper layout."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..core.info_bits import CASE_NAMES, CASES
from ..core.registry import REGISTRY
from ..isa.instructions import FUClass
from .bit_patterns import BitPatternCollector
from .energy import Figure4Result, SWAP_MODES
from .module_usage import ModuleUsageCollector
from .multiplier import MultiplierExperimentResult
from .paper_data import PAPER_TABLE1, PAPER_TABLE2, PAPER_TABLE3


def _format_table(header: Sequence[str], rows: Iterable[Sequence[str]],
                  title: str) -> str:
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_table1(collectors: Dict[FUClass, BitPatternCollector],
                  compare_paper: bool = True) -> str:
    """Table 1: bit patterns in data, measured (and paper, side by side)."""
    header = ["OP1", "OP2", "Comm"]
    classes = [fu for fu in (FUClass.IALU, FUClass.FPAU) if fu in collectors]
    for fu in classes:
        tag = "IALU" if fu is FUClass.IALU else "FPAU"
        header += [f"{tag} freq%", f"{tag} P1", f"{tag} P2"]
        if compare_paper:
            header += [f"{tag} freq% (paper)"]
    rows = []
    for case in CASES:
        for commutative in (True, False):
            row: List[str] = [str((case >> 1) & 1), str(case & 1),
                              "Yes" if commutative else "No"]
            for fu in classes:
                collector = collectors[fu]
                row.append(f"{100 * collector.frequency(case, commutative):.2f}")
                row.append(f"{collector.bit_prob(case, commutative, 0):.3f}")
                row.append(f"{collector.bit_prob(case, commutative, 1):.3f}")
                if compare_paper:
                    row.append(f"{PAPER_TABLE1[fu][(case, commutative)][0]:.2f}")
            rows.append(row)
    return _format_table(header, rows, "Table 1: bit patterns in data")


def render_table2(usage: ModuleUsageCollector,
                  compare_paper: bool = True, max_width: int = 4) -> str:
    """Table 2: modules used per busy cycle."""
    header = ["FU"] + [f"Num(I)={n}" for n in range(1, max_width + 1)]
    if compare_paper:
        header += [f"paper {n}" for n in range(1, max_width + 1)]
    rows = []
    for fu, tag in ((FUClass.IALU, "IALU"), (FUClass.FPAU, "FPAU")):
        distribution = usage.distribution(fu, max_width)
        row = [tag] + [f"{100 * distribution[n]:.1f}%"
                       for n in range(1, max_width + 1)]
        if compare_paper:
            row += [f"{PAPER_TABLE2[fu][n]:.1f}%"
                    for n in range(1, max_width + 1)]
        rows.append(row)
    return _format_table(header, rows,
                         "Table 2: modules used per busy cycle")


def render_table3(results: Dict[FUClass, MultiplierExperimentResult],
                  compare_paper: bool = True) -> str:
    """Table 3: bit patterns in multiplication data."""
    header = ["Case", "Int freq%", "FP freq%"]
    if compare_paper:
        header += ["Int freq% (paper)", "FP freq% (paper)"]
    rows = []
    for case in CASES:
        row = [CASE_NAMES[case],
               f"{100 * results[FUClass.IMULT].case_fraction(case):.2f}",
               f"{100 * results[FUClass.FPMULT].case_fraction(case):.2f}"]
        if compare_paper:
            row += [f"{PAPER_TABLE3[FUClass.IMULT][case][0]:.2f}",
                    f"{PAPER_TABLE3[FUClass.FPMULT][case][0]:.2f}"]
        rows.append(row)
    return _format_table(header, rows,
                         "Table 3: bit patterns in multiplication data")


def render_figure4(result: Figure4Result, title: Optional[str] = None) -> str:
    """Figure 4 panel: energy reduction per scheme and swap regime."""
    swap_columns = [mode for mode in SWAP_MODES
                    if any(key[1] == mode for key in result.cells)]
    header = ["Scheme"] + [f"{mode} (%)" for mode in swap_columns]
    rows = []
    for scheme, reductions in result.grid():
        row = [scheme]
        for mode in swap_columns:
            if mode in reductions:
                row.append(f"{100 * reductions[mode]:.1f}")
            else:
                row.append("-")
        rows.append(row)
    tag = "IALU" if result.fu_class is FUClass.IALU else "FPAU"
    return _format_table(
        header, rows,
        title or f"Figure 4: energy reduction, {tag}"
                 f" (suite: {', '.join(result.workload_names)})")


def render_figure4_per_workload(result: Figure4Result,
                                scheme: str = "lut-4",
                                swap: str = "hw") -> str:
    """Per-benchmark reductions for one scheme, like the paper's
    per-benchmark discussion."""
    header = ["workload", f"{scheme}+{swap} (%)"]
    rows = []
    for name in sorted(result.per_workload):
        rows.append([name,
                     f"{100 * result.workload_reduction(name, scheme, swap):.1f}"])
    tag = "IALU" if result.fu_class is FUClass.IALU else "FPAU"
    return _format_table(header, rows,
                         f"Per-workload energy reduction ({tag})")


def render_campaign(policies: Sequence[str],
                    tasks: Dict[str, Dict[str, Any]],
                    pending: Sequence[str] = (),
                    title: str = "Campaign results") -> str:
    """Render a campaign's per-task grid, degrading gracefully.

    ``tasks`` is the manifest's task map (id -> record).  Completed
    cells show each policy's saving vs that task's ``original``
    baseline; failed tasks are rendered as explicit gaps carrying the
    failure reason, and tasks never attempted (``pending``) are marked
    as such — the report never aborts on missing cells.
    """
    header = (["task", "status", "att", "cycles"]
              + [f"{REGISTRY.label_for(kind)} (%)" for kind in policies]
              + ["detail"])
    rows: List[List[str]] = []
    failed = 0
    for task_id in sorted(set(tasks) | set(pending)):
        record = tasks.get(task_id)
        if record is None:
            rows.append([task_id, "pending", "-", "-"]
                        + ["-"] * len(policies) + ["not yet run"])
            continue
        attempts = str(record.get("attempts", "-"))
        if record.get("status") == "done":
            result = record.get("result", {})
            cells = []
            per_policy = result.get("policies", {})
            for kind in policies:
                saving = per_policy.get(kind, {}).get("saving")
                cells.append(f"{100 * saving:.1f}" if saving is not None
                             else "-")
            parts = []
            if result.get("fault_flips"):
                parts.append(f"faults={result['fault_flips']}")
            wrong_path = result.get("wrong_path_frac")
            if wrong_path:
                parts.append(f"wp={100 * wrong_path:.1f}%")
            detail = " ".join(parts)
            rows.append([task_id, "done", attempts,
                         str(result.get("cycles", "-"))] + cells + [detail])
        else:
            failed += 1
            error = record.get("error", {})
            reason = error.get("type", "unknown")
            message = (error.get("message") or "").splitlines()
            detail = f"{reason}: {message[0][:48]}" if message else reason
            rows.append([task_id, "FAILED", attempts, "-"]
                        + ["-"] * len(policies) + [detail])
    table = _format_table(header, rows, title)
    summary = (f"{len(tasks)} recorded ({failed} failed),"
               f" {len(pending)} pending")
    return f"{table}\n{summary}"


def render_fault_sweep(curve: Dict[float, float],
                       policy: str = "lut-4",
                       title: Optional[str] = None) -> str:
    """Render a fault-injection sweep as rate -> saving rows."""
    header = ["flip rate", f"{policy} saving (%)"]
    rows = [[f"{rate:g}", f"{100 * saving:.2f}"]
            for rate, saving in sorted(curve.items())]
    return _format_table(header, rows,
                         title or "Steering savings vs info-bit fault rate")


def render_multiplier_swapping(
        results: Dict[FUClass, MultiplierExperimentResult]) -> str:
    """Section 4.4 potential and activity-model outcomes."""
    header = ["Multiplier", "ops", "01 swappable %",
              "adds -% (info-bit)", "adds -% (popcount)", "adds -% (booth)"]
    rows = []
    for fu, tag in ((FUClass.IMULT, "integer"), (FUClass.FPMULT, "fp")):
        r = results[fu]
        rows.append([
            tag, str(r.operations),
            f"{100 * r.swappable_01_fraction:.1f}",
            f"{100 * r.adds_reduction('info-bit'):.1f}",
            f"{100 * r.adds_reduction('popcount'):.1f}",
            f"{100 * r.adds_reduction('booth'):.1f}",
        ])
    return _format_table(header, rows,
                         "Multiplier operand swapping (section 4.4)")
