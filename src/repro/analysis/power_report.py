"""Absolute power and energy reporting.

The paper reports relative reductions; a library user sizing a design
wants absolute numbers too.  Using the switched-capacitance model of
section 2 (``E = 1/2 Vdd^2 C h``), this module converts a Figure 4
panel's switched-bit counts into energies and average-power estimates
under a :class:`~repro.core.power.PowerParameters` operating point, and
restates the whole-chip estimate in watts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.power import PowerParameters
from .energy import Figure4Result


@dataclass(frozen=True)
class PowerRow:
    """Absolute figures for one (scheme, swap) cell."""

    scheme: str
    swap: str
    switched_bits: int
    energy_joules: float
    energy_per_op_joules: float
    reduction: float


def absolute_power_rows(panel: Figure4Result,
                        params: Optional[PowerParameters] = None
                        ) -> List[PowerRow]:
    """Convert every cell of a Figure 4 panel into absolute energies."""
    params = params or PowerParameters()
    rows = []
    baseline = panel.baseline_bits
    for (scheme, swap), cell in sorted(panel.cells.items()):
        energy = params.energy_joules(cell.switched_bits)
        per_op = energy / cell.operations if cell.operations else 0.0
        reduction = (1.0 - cell.switched_bits / baseline) if baseline else 0.0
        rows.append(PowerRow(scheme=scheme, swap=swap,
                             switched_bits=cell.switched_bits,
                             energy_joules=energy,
                             energy_per_op_joules=per_op,
                             reduction=reduction))
    return rows


def average_power_watts(panel: Figure4Result, cycles: int,
                        scheme: str = "original", swap: str = "none",
                        params: Optional[PowerParameters] = None) -> float:
    """Average dynamic power of one cell over a run of ``cycles``."""
    params = params or PowerParameters()
    cell = panel.cells[(scheme, swap)]
    return params.average_power_watts(cell.switched_bits, cycles)


def saved_power_watts(panel: Figure4Result, cycles: int,
                      scheme: str = "lut-4", swap: str = "hw",
                      params: Optional[PowerParameters] = None) -> float:
    """Watts saved by a scheme versus the FCFS baseline."""
    baseline = average_power_watts(panel, cycles, "original", "none", params)
    improved = average_power_watts(panel, cycles, scheme, swap, params)
    return baseline - improved


def render_power_report(panel: Figure4Result, cycles: int,
                        params: Optional[PowerParameters] = None) -> str:
    """Readable absolute-power table for one Figure 4 panel."""
    params = params or PowerParameters()
    lines = [f"Absolute power ({panel.fu_class.value.upper()},"
             f" Vdd={params.vdd}V, f={params.frequency_hz / 1e9:.1f}GHz,"
             f" C={params.capacitance_per_bit_f * 1e15:.0f}fF/bit,"
             f" {cycles} cycles)"]
    header = (f"{'scheme':10s} {'swap':12s} {'energy (nJ)':>12}"
              f" {'pJ/op':>8} {'avg mW':>8} {'saving':>7}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in absolute_power_rows(panel, params):
        watts = params.average_power_watts(row.switched_bits, cycles)
        lines.append(f"{row.scheme:10s} {row.swap:12s}"
                     f" {row.energy_joules * 1e9:>12.3f}"
                     f" {row.energy_per_op_joules * 1e12:>8.3f}"
                     f" {watts * 1e3:>8.3f}"
                     f" {100 * row.reduction:>6.1f}%")
    return "\n".join(lines)
