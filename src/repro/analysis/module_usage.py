"""Module usage distribution: reproduces Table 2.

Counts, per FU class, how many operations issue per busy cycle — the
``Num(I)`` distribution that the LUT synthesis weighs diversity against
capacity with.  Cycles issuing nothing are excluded, as in the paper
("we only consider cycles which use at least one module").
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..cpu.trace import IssueGroup
from ..isa.instructions import FUClass


class ModuleUsageCollector:
    """Issue listener counting issue-group widths for some FU classes."""

    def __init__(self, fu_classes: Optional[Iterable[FUClass]] = None):
        self._filter = set(fu_classes) if fu_classes is not None else None
        self.counts: Dict[FUClass, Dict[int, int]] = {}

    def __call__(self, group: IssueGroup) -> None:
        if self._filter is not None and group.fu_class not in self._filter:
            return
        if not group.ops:
            return
        per_class = self.counts.setdefault(group.fu_class, {})
        width = len(group.ops)
        per_class[width] = per_class.get(width, 0) + 1

    def merge(self, other: "ModuleUsageCollector") -> None:
        """Fold another collector's counts into this one."""
        for fu_class, widths in other.counts.items():
            mine = self.counts.setdefault(fu_class, {})
            for width, count in widths.items():
                mine[width] = mine.get(width, 0) + count

    def busy_cycles(self, fu_class: FUClass) -> int:
        return sum(self.counts.get(fu_class, {}).values())

    def distribution(self, fu_class: FUClass,
                     max_width: int = 4) -> Dict[int, float]:
        """Fraction of busy cycles issuing each width (Table 2 row)."""
        widths = self.counts.get(fu_class, {})
        total = sum(widths.values())
        if not total:
            return {n: 0.0 for n in range(1, max_width + 1)}
        result = {n: widths.get(n, 0) / total for n in range(1, max_width + 1)}
        overflow = sum(count for width, count in widths.items()
                       if width > max_width)
        result[max_width] += overflow / total
        return result
