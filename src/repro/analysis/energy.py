"""Energy-reduction experiments: the driver behind Figure 4.

For one FU class, every steering scheme in the paper is evaluated under
three swapping regimes against the same workload suite:

* ``none`` — the scheme alone;
* ``hw`` — plus dynamic hardware swapping (case-based for LUT/Original,
  integrated into the cost matrix for the Hamming policies, exactly as
  Figure 2 allows);
* ``compiler`` / ``hw+compiler`` — the suite is first rewritten by the
  profile-guided static swap pass, then evaluated (optionally with the
  hardware swapper on top).

Each *program version* (a workload, or its compiler-swapped rewrite) is
simulated exactly once: the issue stream is captured through
:mod:`repro.streams` and then *replayed* — for the statistics pass and
for every (scheme, swap) evaluator cell — because evaluation is far
cheaper than simulation and a captured stream is bit-identical to live
listening.  With ``trace_cache_dir`` set, captures are persisted under
content-addressed keys (program + machine-config fingerprints) so later
runs skip simulation entirely.  Reductions are reported against the
paper's baseline: ``original`` steering, no swapping, unmodified
programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..batch import (ENGINE_BACKENDS, ENGINES, drive_stream, packed_cached,
                     resolve_engine)
from ..compiler import swap_optimize
from ..cpu.config import MachineConfig, default_config
from ..core.info_bits import InfoBitScheme, scheme_for
from ..core.registry import REGISTRY
from ..core.statistics import CaseStatistics, paper_statistics
from ..core.steering import PolicyEvaluator, make_policy
from ..core.swapping import HardwareSwapper, choose_swap_case
from ..isa.instructions import FUClass
from ..isa.program import Program
from ..streams import (IssueSource, LiveSource, MemorySource, SyntheticSource,
                       cached_source, capture, drive, prune_trace_cache,
                       record_cached, trace_cache_key)
from ..workloads.base import Workload, float_suite, integer_suite
from .bit_patterns import BitPatternCollector
from .module_usage import ModuleUsageCollector

#: the default figure-4 grid, derived from the policy registry: every
#: family's grid_kinds in grid order (so registering a family with grid
#: metadata adds its rows here with no edit)
SCHEMES = REGISTRY.grid_kinds()
SWAP_MODES = ("none", "hw", "compiler", "hw+compiler")

CellKey = Tuple[str, str]  # (scheme, swap mode)


@dataclass
class CellResult:
    """Accumulated energy for one (scheme, swap) grid cell."""

    scheme: str
    swap: str
    switched_bits: int = 0
    operations: int = 0
    hardware_swaps: int = 0


@dataclass
class Figure4Result:
    """One Figure 4 panel: grid of energy reductions for an FU class."""

    fu_class: FUClass
    workload_names: List[str]
    statistics: CaseStatistics
    cells: Dict[CellKey, CellResult] = field(default_factory=dict)
    # per-workload switched bits: workload -> cell -> bits
    per_workload: Dict[str, Dict[CellKey, int]] = field(default_factory=dict)
    # provenance of the issue streams this panel was evaluated on:
    # simulations actually run, plus trace-cache hits/misses when a
    # cache directory was in play (hits + misses = program versions)
    simulations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def baseline_bits(self) -> int:
        return self.cells[("original", "none")].switched_bits

    def workload_reduction(self, name: str, scheme: str,
                           swap: str = "none") -> float:
        """Reduction of one (scheme, swap) cell on one workload alone."""
        cells = self.per_workload[name]
        baseline = cells[("original", "none")]
        if not baseline:
            return 0.0
        return 1.0 - cells[(scheme, swap)] / baseline

    def reduction(self, scheme: str, swap: str = "none") -> float:
        """Fractional reduction vs the Original/no-swap baseline."""
        baseline = self.baseline_bits
        if not baseline:
            return 0.0
        return 1.0 - self.cells[(scheme, swap)].switched_bits / baseline

    def grid(self) -> List[Tuple[str, Dict[str, float]]]:
        """Rows of (scheme, {swap mode: reduction}) for reporting.

        Rows are the schemes actually evaluated (not the module-level
        default), ordered by the registry's grid order so custom
        ``schemes=`` runs render consistently.
        """
        present: List[str] = []
        for scheme, _swap in self.cells:
            if scheme not in present:
                present.append(scheme)
        present.sort(key=REGISTRY.grid_sort_key)
        rows = []
        for scheme in present:
            row = {swap: self.reduction(scheme, swap)
                   for swap in SWAP_MODES if (scheme, swap) in self.cells}
            rows.append((scheme, row))
        return rows


def measure_statistics(programs: Sequence[Program],
                       fu_class: FUClass,
                       config: Optional[MachineConfig] = None,
                       scheme: Optional[InfoBitScheme] = None
                       ) -> Tuple[CaseStatistics, BitPatternCollector,
                                  ModuleUsageCollector]:
    """Simulate the suite once to measure Table 1/2 style statistics."""
    config = config or default_config()
    sources = [LiveSource(program, config) for program in programs]
    return statistics_from_sources(sources, fu_class, config, scheme)


def statistics_from_sources(sources: Sequence[IssueSource],
                            fu_class: FUClass,
                            config: Optional[MachineConfig] = None,
                            scheme: Optional[InfoBitScheme] = None
                            ) -> Tuple[CaseStatistics, BitPatternCollector,
                                       ModuleUsageCollector]:
    """Measure Table 1/2 statistics from any issue sources — live,
    captured, replayed, or synthetic."""
    config = config or default_config()
    patterns = BitPatternCollector(fu_class, scheme=scheme)
    usage = ModuleUsageCollector([fu_class])
    for source in sources:
        # packed streams go through the fused statistics kernels,
        # object streams through the classic loop — same totals either
        # way (tests/batch/test_parity.py)
        drive_stream(source, [patterns, usage])
    distribution = usage.distribution(fu_class,
                                      max_width=config.modules(fu_class))
    stats = patterns.to_statistics(distribution)
    return stats, patterns, usage


def _captured_stream(program: Program, config: MachineConfig,
                     fu_class: FUClass, cache_dir, engine: str = "object"
                     ) -> Tuple[IssueSource, bool]:
    """One issue stream per program version, simulated at most once.

    Without a cache directory this is a plain in-memory capture (one
    simulation).  With one, a recorded trace under the content-addressed
    key is replayed instead, and a miss both simulates and populates the
    cache.  Returns ``(stream, cache_hit)``.

    With the batch engines the stream comes back as a
    :class:`~repro.batch.columns.PackedTrace` (mmapped from the cache
    sidecar on a warm hit — the gzip JSON trace is not parsed at all)
    stamped with the engine's kernel backend (``"batch-np"`` →
    vectorized NumPy kernels, ``"batch"`` → pure Python);
    ``"object"`` keeps the classic decoded stream as the reference path.
    """
    fu_classes = (fu_class,)
    if engine in ENGINE_BACKENDS:
        packed, hit = packed_cached(program, config, cache_dir, fu_classes)
        packed.backend = ENGINE_BACKENDS[engine]
        return packed, hit
    if cache_dir is not None:
        found = cached_source(program, config, cache_dir, fu_classes)
        if found is not None:
            # the replay is re-drivable and streams from disk, so each
            # pass holds one group at a time — never the whole decoded
            # stream (compiler-swapped versions need only one pass, and
            # peak RSS stays flat however long the trace is)
            return found, True
        return record_cached(program, config, cache_dir, fu_classes), False
    return capture(LiveSource(program, config), fu_classes), False


def _build_evaluators(fu_class: FUClass, num_modules: int,
                      stats: CaseStatistics, scheme: InfoBitScheme,
                      schemes: Sequence[str], with_hw_swap: bool
                      ) -> Dict[str, PolicyEvaluator]:
    """One evaluator per scheme for a single program pass."""
    swap_case = choose_swap_case(stats)
    evaluators: Dict[str, PolicyEvaluator] = {}
    for kind in schemes:
        family, _params = REGISTRY.resolve(kind)
        if family.supports_swap:
            # the matcher itself weighs router swaps (section 4.1/4.2)
            policy = make_policy(kind, fu_class, num_modules, stats=stats,
                                 scheme=scheme, allow_swap=with_hw_swap)
            pre_swapper = None
        else:
            policy = make_policy(kind, fu_class, num_modules, stats=stats,
                                 scheme=scheme)
            pre_swapper = (HardwareSwapper(scheme, swap_case)
                           if with_hw_swap else None)
        evaluators[kind] = PolicyEvaluator(fu_class, num_modules, policy,
                                           scheme=scheme,
                                           pre_swapper=pre_swapper)
    return evaluators


def run_figure4(fu_class: FUClass,
                workloads: Optional[Iterable[Workload]] = None,
                scale: Optional[int] = None,
                config: Optional[MachineConfig] = None,
                stats_source: str = "measured",
                schemes: Sequence[str] = SCHEMES,
                swap_modes: Sequence[str] = ("none", "hw", "hw+compiler"),
                scheme: Optional[InfoBitScheme] = None,
                trace_cache_dir=None,
                engine: str = "auto",
                jobs: int = 1,
                trace_cache_limit_mb: Optional[float] = None
                ) -> Figure4Result:
    """Reproduce one panel of Figure 4.

    ``stats_source`` selects where the LUT-synthesis statistics come
    from: ``"measured"`` (a profiling pass over the suite, the
    self-consistent default) or ``"paper"`` (the published Table 1/2).

    Each program version is simulated exactly once; the captured stream
    is replayed for the statistics pass and every evaluator set.  With
    ``trace_cache_dir`` the captures are persisted content-addressed,
    so a rerun with unchanged programs and machine config simulates
    nothing at all (``result.cache_hits`` / ``cache_misses`` report
    what happened; ``result.simulations`` counts actual simulator
    runs).  ``trace_cache_limit_mb`` prunes the cache LRU-style after
    the run, never evicting an entry this run just used.

    ``engine`` picks the evaluation path: ``"auto"`` (default) resolves
    to ``"batch-np"`` — the fused columnar kernels vectorized on NumPy
    — when NumPy is importable, else ``"batch"`` (the same kernels in
    pure Python); ``"object"`` is the classic decoded-stream loop, kept
    as the reference oracle the parity tests compare against.  All
    engines produce bit-identical results.  ``jobs`` > 1 fans the
    per-workload replay work across a process pool (results merge
    deterministically, so the output is byte-stable regardless of the
    job count).
    """
    engine = resolve_engine(engine)
    if jobs > 1:
        from .parallel import ParallelFigureRunner
        return ParallelFigureRunner(jobs=jobs).run_figure4(
            fu_class, workloads=workloads, scale=scale, config=config,
            stats_source=stats_source, schemes=schemes,
            swap_modes=swap_modes, scheme=scheme,
            trace_cache_dir=trace_cache_dir, engine=engine,
            trace_cache_limit_mb=trace_cache_limit_mb)
    config = config or default_config()
    if workloads is None:
        workloads = (integer_suite() if fu_class is FUClass.IALU
                     else float_suite())
    workloads = list(workloads)
    scheme = scheme or scheme_for(fu_class)
    programs = [w.build(scale) for w in workloads]
    num_modules = config.modules(fu_class)
    if stats_source not in ("measured", "paper"):
        raise ValueError("stats_source must be 'measured' or 'paper'")

    # one simulation (or cache hit) per unmodified program version; the
    # captured streams feed the statistics pass *and* the evaluator sets
    captured: List[IssueSource] = []
    hits = misses = 0
    for program in programs:
        stream, hit = _captured_stream(program, config, fu_class,
                                       trace_cache_dir, engine)
        captured.append(stream)
        hits += hit
        misses += not hit

    if stats_source == "paper":
        stats = paper_statistics(fu_class)
    else:
        stats, _, _ = statistics_from_sources(captured, fu_class, config,
                                              scheme)

    result = Figure4Result(fu_class=fu_class,
                           workload_names=[w.name for w in workloads],
                           statistics=stats)
    needs_compiler = any("compiler" in m for m in swap_modes)
    used_programs: List[Program] = list(programs)

    for program, stream in zip(programs, captured):
        plain_modes = [m for m in ("none", "hw") if m in swap_modes]
        if "none" not in plain_modes:
            plain_modes.append("none")  # the baseline cell is always needed
        _evaluate_modes(stream, program.name, fu_class, num_modules, stats,
                        scheme, schemes, plain_modes, result)
        if needs_compiler:
            # the compiler must canonicalise in the same direction the
            # hardware swap rule implies, or the two mechanisms fight
            from ..compiler.swap_pass import denser_first_from_swap_case
            direction = {fu_class:
                         denser_first_from_swap_case(choose_swap_case(stats))}
            swapped, _report = swap_optimize(program, denser_first=direction)
            compiler_modes = [m for m in ("compiler", "hw+compiler")
                              if m in swap_modes]
            # the rewritten program is a distinct version (different
            # instruction content, so a different cache key)
            sw_stream, hit = _captured_stream(swapped, config, fu_class,
                                              trace_cache_dir, engine)
            hits += hit
            misses += not hit
            _evaluate_modes(sw_stream, swapped.name, fu_class, num_modules,
                            stats, scheme, schemes, compiler_modes, result)
            used_programs.append(swapped)
    result.cache_hits = hits if trace_cache_dir is not None else 0
    result.cache_misses = misses if trace_cache_dir is not None else 0
    result.simulations = misses
    if trace_cache_dir is not None and trace_cache_limit_mb is not None:
        protect = [Path(trace_cache_dir)
                   / (trace_cache_key(p, config, (fu_class,)) + ".trace.gz")
                   for p in used_programs]
        prune_trace_cache(trace_cache_dir, trace_cache_limit_mb,
                          protect=protect)
    return result


def _evaluate_modes(stream: IssueSource, program_name: str,
                    fu_class: FUClass, num_modules: int,
                    stats: CaseStatistics, scheme: InfoBitScheme,
                    schemes: Sequence[str], modes: Sequence[str],
                    result: Figure4Result) -> None:
    """Replay one program version's stream through evaluators for
    ``modes`` — no simulation happens here."""
    per_mode: Dict[str, Dict[str, PolicyEvaluator]] = {}
    consumers: List[PolicyEvaluator] = []
    for mode in modes:
        hw = mode in ("hw", "hw+compiler")
        evaluators = _build_evaluators(fu_class, num_modules, stats, scheme,
                                       schemes, with_hw_swap=hw)
        per_mode[mode] = evaluators
        consumers.extend(evaluators.values())
    drive_stream(stream, consumers)
    workload_name = program_name.removesuffix("+cswap")
    breakdown = result.per_workload.setdefault(workload_name, {})
    for mode, evaluators in per_mode.items():
        for kind, evaluator in evaluators.items():
            cell = result.cells.setdefault((kind, mode),
                                           CellResult(kind, mode))
            totals = evaluator.totals()
            cell.switched_bits += totals.switched_bits
            cell.operations += totals.operations
            cell.hardware_swaps += totals.hardware_swaps
            breakdown[(kind, mode)] = breakdown.get((kind, mode), 0) \
                + totals.switched_bits


def run_figure4_synthetic(fu_class: FUClass,
                          cycles: int = 20_000,
                          stats: Optional[CaseStatistics] = None,
                          num_modules: int = 4,
                          operand_mode: str = "iid",
                          seed: int = 0,
                          schemes: Sequence[str] = SCHEMES,
                          swap_modes: Sequence[str] = ("none", "hw"),
                          scheme: Optional[InfoBitScheme] = None
                          ) -> Figure4Result:
    """Figure 4 on a synthetic stream calibrated to given statistics.

    By default the stream is drawn from the paper's own Table 1 and
    Table 2 distributions, so this is the *calibration* reproduction:
    the policies see operand statistics identical to the published
    ones, independent of how closely our kernels match SPEC 95.
    Compiler swapping needs a program to rewrite, so only ``none`` and
    ``hw`` regimes apply here.
    """
    if any("compiler" in mode for mode in swap_modes):
        raise ValueError("compiler swapping needs real programs; use"
                         " run_figure4 for compiler regimes")
    stats = stats or paper_statistics(fu_class)
    scheme = scheme or scheme_for(fu_class)
    result = Figure4Result(fu_class=fu_class,
                           workload_names=[f"synthetic-{operand_mode}"],
                           statistics=stats)
    modes = list(swap_modes)
    if "none" not in modes:
        modes.append("none")
    evaluator_sets = {}
    for mode in modes:
        evaluator_sets[mode] = _build_evaluators(
            fu_class, num_modules, stats, scheme, schemes,
            with_hw_swap=(mode == "hw"))
    source = SyntheticSource(stats, cycles, num_modules=num_modules,
                             operand_mode=operand_mode, seed=seed)
    drive(source, [evaluator for evaluators in evaluator_sets.values()
                   for evaluator in evaluators.values()])
    for mode, evaluators in evaluator_sets.items():
        for kind, evaluator in evaluators.items():
            totals = evaluator.totals()
            cell = result.cells.setdefault((kind, mode),
                                           CellResult(kind, mode))
            cell.switched_bits += totals.switched_bits
            cell.operations += totals.operations
            cell.hardware_swaps += totals.hardware_swaps
    return result


def chip_level_estimate(ialu: Figure4Result, fpau: Figure4Result,
                        scheme: str = "lut-4", swap: str = "hw",
                        exec_fraction: float = 0.22) -> float:
    """Whole-chip power-reduction estimate, as in the paper's intro.

    The execution units' share of chip power (~22% per Wattch) is split
    between the IALU and FPAU in proportion to their switched-bit
    baselines, and each side contributes its measured reduction.
    """
    ialu_base = ialu.baseline_bits
    fpau_base = fpau.baseline_bits
    total = ialu_base + fpau_base
    if not total:
        return 0.0
    blended = (ialu.reduction(scheme, swap) * ialu_base
               + fpau.reduction(scheme, swap) * fpau_base) / total
    return exec_fraction * blended
