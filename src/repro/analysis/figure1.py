"""Figure 1: the motivating routing example.

The paper opens with a 3-way machine where three operations execute in
cycle 1 and two in cycle 2; routing cycle 2's operations to *different*
modules than first-come-first-serve would pick reduces the switched
input bits by 57%.  This module reconstructs that example with the
library's own cost matrix and optimal-assignment machinery, so the
benchmark can regenerate the figure's number.

Operands in the figure are 16-bit hex words; the energy metric is the
total Hamming distance between each module's cycle-1 and cycle-2 inputs
(modules that receive no operation in cycle 2 keep their latched inputs
and switch nothing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.assignment import optimal_assignment
from ..cpu.trace import MicroOp
from ..isa import encoding
from ..isa.instructions import opcode

# cycle 1: (op1, op2) latched at each of the three FUs, figure order
FIGURE1_CYCLE1 = ((0x0001, 0x0001), (0x0A01, 0xFFF7), (0x7F00, 0x0111))
# cycle 2: the two operations to route
FIGURE1_CYCLE2 = ((0x0A71, 0x0A01), (0x7FFF, 0x0001))


def _hamming16(a: int, b: int) -> int:
    return encoding.popcount((a ^ b) & 0xFFFF)


def _cost(op1: int, op2: int, prev1: int, prev2: int) -> float:
    return _hamming16(op1, prev1) + _hamming16(op2, prev2)


@dataclass(frozen=True)
class Figure1Result:
    """Energies of the default and optimal routings."""

    default_energy: int
    optimal_energy: int
    optimal_modules: Tuple[int, ...]
    optimal_swapped: Tuple[bool, ...]

    @property
    def saving(self) -> float:
        """Fractional saving of the alternative routing (paper: 57%)."""
        if not self.default_energy:
            return 0.0
        return 1.0 - self.optimal_energy / self.default_energy


def evaluate_figure1(allow_swap: bool = True) -> Figure1Result:
    """Compute both routings of the paper's Figure 1 example."""
    add = opcode("add")
    ops = [MicroOp(add, op1, op2) for op1, op2 in FIGURE1_CYCLE2]

    default_energy = sum(
        _cost(op.op1, op.op2, *FIGURE1_CYCLE1[index])
        for index, op in enumerate(ops))

    assignment = optimal_assignment(ops, list(FIGURE1_CYCLE1), _cost,
                                    allow_swap=allow_swap)
    return Figure1Result(default_energy=default_energy,
                         optimal_energy=int(assignment.total_cost),
                         optimal_modules=assignment.modules,
                         optimal_swapped=assignment.swapped)
