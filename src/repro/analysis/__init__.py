"""Evaluation layer: table collectors, experiment drivers, reports."""

from .bit_patterns import BitPatternCollector, RowStats
from .energy import (SCHEMES, SWAP_MODES, CellResult, Figure4Result,
                     chip_level_estimate, measure_statistics, run_figure4,
                     statistics_from_sources)
from .figure1 import Figure1Result, evaluate_figure1
from .module_load import (LoadTrackingPowerModel, ModuleLoad,
                          attach_load_tracking, module_load,
                          render_module_load)
from .module_usage import ModuleUsageCollector
from .multiplier import (MultiplierExperimentResult,
                         run_multiplier_experiment)
from .power_report import (PowerRow, absolute_power_rows,
                           average_power_watts, render_power_report,
                           saved_power_watts)
from .report import (render_figure4, render_figure4_per_workload,
                     render_multiplier_swapping,
                     render_table1, render_table2, render_table3)
from .value_stats import ValueStatsCollector, render_value_stats
from .sensitivity import (SensitivityResult, profile_transfer_study,
                          run_sensitivity_suite)
from . import paper_data

__all__ = [
    "BitPatternCollector", "RowStats",
    "SCHEMES", "SWAP_MODES", "CellResult", "Figure4Result",
    "chip_level_estimate", "measure_statistics", "run_figure4",
    "statistics_from_sources",
    "Figure1Result", "evaluate_figure1",
    "LoadTrackingPowerModel", "ModuleLoad", "attach_load_tracking",
    "module_load", "render_module_load",
    "ModuleUsageCollector",
    "ValueStatsCollector", "render_value_stats",
    "MultiplierExperimentResult", "run_multiplier_experiment",
    "render_figure4", "render_figure4_per_workload",
    "render_multiplier_swapping",
    "render_table1", "render_table2", "render_table3",
    "SensitivityResult", "profile_transfer_study", "run_sensitivity_suite",
    "PowerRow", "absolute_power_rows", "average_power_watts",
    "render_power_report", "saved_power_watts",
    "paper_data",
]
