"""Telemetry configuration knobs.

Kept dependency-free (plain dataclass, JSON-able) so it can sit inside
:class:`~repro.cpu.config.MachineConfig` without dragging the telemetry
runtime into the config layer, and travel through campaign manifests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

DEFAULT_TRACE_BUFFER = 65_536


@dataclass(frozen=True)
class TelemetryConfig:
    """What to record during a simulation run.

    ``metrics`` enables the counter/gauge/histogram registry (cheap:
    counters are published at run end, histograms are one guarded
    observe per issuing FU class per cycle).  ``sample_interval`` > 0
    samples the pipeline time series every that many cycles (0
    disables).  ``trace_events`` records per-operation pipeline spans
    into a ring buffer of ``trace_buffer`` spans for Chrome-trace
    export — the costliest mode, intended for short diagnostic runs.
    """

    metrics: bool = True
    sample_interval: int = 0
    trace_events: bool = False
    trace_buffer: int = DEFAULT_TRACE_BUFFER

    def __post_init__(self) -> None:
        if self.sample_interval < 0:
            raise ValueError("sample_interval must be >= 0 (0 disables)")
        if self.trace_buffer < 1:
            raise ValueError("trace_buffer must be at least 1 span")

    @property
    def enabled(self) -> bool:
        """True when any recording mode is on."""
        return bool(self.metrics or self.sample_interval
                    or self.trace_events)

    def to_dict(self) -> Dict[str, Any]:
        return {"metrics": self.metrics,
                "sample_interval": self.sample_interval,
                "trace_events": self.trace_events,
                "trace_buffer": self.trace_buffer}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TelemetryConfig":
        return cls(
            metrics=bool(payload.get("metrics", True)),
            sample_interval=int(payload.get("sample_interval", 0)),
            trace_events=bool(payload.get("trace_events", False)),
            trace_buffer=int(payload.get("trace_buffer",
                                         DEFAULT_TRACE_BUFFER)))
