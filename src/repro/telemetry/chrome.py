"""Chrome trace-event export (viewable in Perfetto / chrome://tracing).

Converts a :class:`~repro.telemetry.pipeline.PipelineTracer`'s spans
into the Trace Event Format's *JSON object* flavour::

    {"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}

Mapping: one simulated cycle = 1 trace microsecond.  Each FU class is a
*process* (pid = fu_index + 1) and every dynamic operation is one
complete ("X") event from dispatch to retirement/flush, with the issue
and writeback cycles in ``args``.  Overlapping operations of one FU
class are laid out onto *lanes* (tids) by a greedy interval scheduler,
so Perfetto never has to nest partially-overlapping slices.  Steering
module-assignment decisions become instant ("i") events and sampler
rows become counter ("C") tracks (IPC, ROB occupancy).

:func:`validate_chrome_trace` is the schema check the test suite and
the CI smoke job run against exported files.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .pipeline import FLUSHED, PipelineTracer

METRICS_PID = 1_000  # counter tracks live in their own process group
STEER_PID = 1_001


def _fu_name(tracer: PipelineTracer, fu_index: int) -> str:
    if 0 <= fu_index < len(tracer.fu_names):
        return str(tracer.fu_names[fu_index])
    return f"fu{fu_index}"


def chrome_trace(tracer: PipelineTracer,
                 name: str = "repro",
                 samples: Optional[Sequence[Dict[str, Any]]] = None
                 ) -> Dict[str, Any]:
    """Build the Chrome trace-event JSON object for one traced run."""
    events: List[Dict[str, Any]] = []
    seen_pids: Dict[int, str] = {}

    # spans, oldest dispatch first so lane allocation is a forward scan
    spans = sorted(tracer.spans, key=lambda span: (span[4], span[0]))
    lanes: Dict[int, List[int]] = {}  # pid -> per-lane last end cycle
    for seq, op_name, address, fu_index, dispatch, issue, complete, \
            end, state in spans:
        pid = fu_index + 1
        seen_pids.setdefault(pid, f"FU {_fu_name(tracer, fu_index)}")
        ends = lanes.setdefault(pid, [])
        for tid, lane_end in enumerate(ends):
            if lane_end <= dispatch:
                break
        else:
            tid = len(ends)
            ends.append(0)
        ends[tid] = max(end, dispatch + 1)
        args: Dict[str, Any] = {"seq": seq, "state": state}
        if address is not None:
            args["pc"] = address
        if issue >= 0:
            args["issue"] = issue
        if complete >= 0:
            args["writeback"] = complete
        events.append({"name": op_name,
                       "cat": state,
                       "ph": "X",
                       "ts": dispatch,
                       "dur": max(end - dispatch, 1),
                       "pid": pid, "tid": tid,
                       "args": args})
        if state == FLUSHED:
            events.append({"name": "flush", "cat": "flush", "ph": "i",
                           "s": "t", "ts": end, "pid": pid, "tid": tid,
                           "args": {"seq": seq}})

    for event in tracer.events:
        seen_pids.setdefault(STEER_PID, "steering")
        events.append({"name": f"{event['label']}@{event['fu']}",
                       "cat": "steer", "ph": "i", "s": "p",
                       "ts": event["cycle"], "pid": STEER_PID, "tid": 0,
                       "args": {"modules": event["modules"],
                                "swapped": event["swapped"]}})

    for row in samples or ():
        seen_pids.setdefault(METRICS_PID, "metrics")
        ts = row.get("cycle", 0)
        counters = {}
        if "ipc" in row:
            counters["ipc"] = row["ipc"]
        if "rob" in row:
            counters["rob"] = row["rob"]
        if "wrong_path_frac" in row:
            counters["wrong_path"] = row["wrong_path_frac"]
        for counter_name, value in counters.items():
            events.append({"name": counter_name, "ph": "C", "ts": ts,
                           "pid": METRICS_PID, "tid": 0,
                           "args": {counter_name: value}})

    metadata: List[Dict[str, Any]] = []
    for pid, process_name in sorted(seen_pids.items()):
        metadata.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": process_name}})
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.telemetry",
            "workload": name,
            "cycles_per_us": 1,
            "spans": len(tracer.spans),
            "dropped_spans": tracer.dropped_spans,
        },
    }


def validate_chrome_trace(payload: Any) -> List[str]:
    """Schema-check a Chrome trace-event JSON object.

    Returns a list of human-readable problems (empty = valid).  This is
    deliberately strict about the fields Perfetto's importer requires —
    phase, numeric timestamps, pid/tid, and a duration on complete
    events — and lenient about everything else.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    if not events:
        problems.append("'traceEvents' is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            problems.append(f"{where}: missing phase 'ph'")
            continue
        if phase not in ("X", "B", "E", "i", "I", "C", "M", "s", "t",
                        "f", "b", "e", "n"):
            problems.append(f"{where}: unknown phase {phase!r}")
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing 'name'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: '{key}' must be an integer")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: 'ts' must be a number >= 0")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' event needs numeric 'dur'")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args or any(
                    not isinstance(v, (int, float))
                    for v in args.values()):
                problems.append(
                    f"{where}: 'C' event needs numeric 'args'")
    return problems


def ensure_valid_chrome_trace(payload: Any) -> None:
    """Raise ``ValueError`` listing every schema problem, if any."""
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError("invalid Chrome trace: " + "; ".join(problems))
