"""Hierarchical metrics: counters, gauges, bucketed histograms.

The registry is the always-on half of the telemetry subsystem: cheap
monotonic counters and point-in-time gauges keyed by dot-separated
hierarchical names (``sim.cycles``, ``steer.ialu.lut-4bit.case01``).
Design constraints, in order:

* **cheap increments** — a counter is one attribute add on a plain
  object; hot paths prebind the metric objects once and never touch
  the registry dict again;
* **mergeable** — campaign workers run in separate processes, so every
  metric defines an associative, commutative merge (counters and
  histograms add, gauges take the maximum) and the registry round-trips
  through plain JSON dicts for pickling across the pool;
* **null sink** — :data:`NULL_REGISTRY` satisfies the same interface
  with no-op metrics, so library code can hold an unconditional
  reference; the simulator additionally skips its hooks entirely when
  telemetry is disabled, which is the verifiably-near-zero path.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)


class Counter:
    """A monotonically increasing count.  Merge: addition."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (occupancy, depth).  Merge: maximum —
    the only associative choice that is meaningful when two processes
    report the same gauge, giving the campaign the high-water mark."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def high_water(self, value) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """A bucketed distribution with fixed upper-bound edges.

    ``edges`` are sorted inclusive upper bounds: bucket ``i`` counts
    observations ``x`` with ``edges[i-1] < x <= edges[i]``; one final
    overflow bucket counts ``x > edges[-1]``, so ``counts`` has
    ``len(edges) + 1`` entries.  Merge: bucket-wise addition (edges
    must match exactly).
    """

    __slots__ = ("name", "edges", "counts", "total", "sum")

    def __init__(self, name: str,
                 edges: Sequence[float] = DEFAULT_BUCKETS):
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        ordered = tuple(edges)
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ValueError("histogram edges must be strictly increasing")
        self.name = name
        self.edges = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.total = 0
        self.sum = 0

    def observe(self, value) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"edges": list(self.edges), "counts": list(self.counts),
                "total": self.total, "sum": self.sum}


class MetricsRegistry:
    """Name -> metric map with JSON round-trip and merge semantics."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ----- registration ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  edges: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name, self._histograms)
            metric = self._histograms[name] = Histogram(name, edges)
        elif tuple(edges) != metric.edges:
            raise ValueError(
                f"histogram '{name}' already registered with edges"
                f" {metric.edges}, not {tuple(edges)}")
        return metric

    def _check_free(self, name: str, own: Dict[str, Any]) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(
                    f"metric '{name}' already registered as another kind")

    # ----- convenience ----------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value) -> None:
        self.gauge(name).set(value)

    def counter_values(self) -> Dict[str, int]:
        return {name: c.value for name, c in self._counters.items()}

    def gauge_values(self) -> Dict[str, Any]:
        return {name: g.value for name, g in self._gauges.items()}

    # ----- serialisation and merge ----------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form: JSON-able and picklable across processes."""
        return {
            "counters": self.counter_values(),
            "gauges": self.gauge_values(),
            "histograms": {name: h.to_dict()
                           for name, h in self._histograms.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(payload)
        return registry

    def merge(self, other: Union["MetricsRegistry", Dict[str, Any]]
              ) -> "MetricsRegistry":
        """Fold another registry (or its ``to_dict`` form) into this one.

        Counters and histogram buckets add, gauges keep the maximum —
        all associative and commutative, so campaign aggregation may
        fold worker results in any grouping or order.
        """
        payload = other.to_dict() if isinstance(other, MetricsRegistry) \
            else other
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).high_water(value)
        for name, data in payload.get("histograms", {}).items():
            hist = self.histogram(name, tuple(data["edges"]))
            if hist.edges != tuple(data["edges"]):  # pragma: no cover
                raise ValueError(f"histogram '{name}' edge mismatch")
            for index, count in enumerate(data["counts"]):
                hist.counts[index] += count
            hist.total += data["total"]
            hist.sum += data["sum"]
        return self

    @classmethod
    def merge_all(cls, payloads: Iterable[Union["MetricsRegistry",
                                                Dict[str, Any]]]
                  ) -> "MetricsRegistry":
        merged = cls()
        for payload in payloads:
            merged.merge(payload)
        return merged


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value) -> None:
        pass

    def high_water(self, value) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The null sink: same interface, no state, no-op metrics.

    Handing this to library code keeps every telemetry call site
    unconditional while recording nothing; hot loops should still
    prefer skipping their hooks outright when telemetry is off.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null", (1,))

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str,
                  edges: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._null_histogram

    def merge(self, other) -> "NullRegistry":
        return self


NULL_REGISTRY = NullRegistry()


def format_metrics(registry: MetricsRegistry,
                   extra_counters: Optional[Dict[str, int]] = None,
                   title: str = "metrics") -> str:
    """Render a registry (plus collector-provided counters) as a table."""
    counters = dict(registry.counter_values())
    if extra_counters:
        counters.update(extra_counters)
    gauges = registry.gauge_values()
    lines: List[str] = [title, "-" * max(len(title), 40)]
    width = max([len(n) for n in (*counters, *gauges)] + [24])
    for name in sorted(counters):
        lines.append(f"{name:<{width}} {counters[name]:>14}")
    for name in sorted(gauges):
        lines.append(f"{name:<{width}} {gauges[name]:>14}")
    for name in sorted(registry._histograms):
        hist = registry._histograms[name]
        buckets = " ".join(
            f"(<={edge:g})={count}"
            for edge, count in zip(hist.edges, hist.counts))
        buckets += f" (>{hist.edges[-1]:g})={hist.counts[-1]}"
        lines.append(f"{name:<{width}} n={hist.total} mean={hist.mean:.2f}"
                     f" {buckets}")
    return "\n".join(lines)
