"""One run's telemetry bundle: registry + sampler + tracer.

A :class:`TelemetrySession` is what the simulator, the steering
evaluators, and the campaign runner actually share.  It owns

* the :class:`~repro.telemetry.metrics.MetricsRegistry` (or the null
  sink when metrics are off),
* an optional :class:`~repro.telemetry.sampler.TimeSeriesSampler`
  (``sample_interval`` > 0),
* an optional :class:`~repro.telemetry.pipeline.PipelineTracer`
  (``trace_events``),

plus a list of *collectors* — callables returning ``{name: value}``
cumulative counters pulled on demand (at sample points and in the final
summary).  Collectors are how cheap state that already exists elsewhere
(the power model's per-module switched-bit totals, the evaluators'
case counters) joins the time series without the hot loops writing to
the registry every cycle.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, IO, List, Optional

from .chrome import chrome_trace
from .config import TelemetryConfig
from .metrics import (MetricsRegistry, NULL_REGISTRY, format_metrics)
from .pipeline import PipelineTracer
from .sampler import NULL_SAMPLER, TimeSeriesSampler

Collector = Callable[[], Dict[str, Any]]


class TelemetrySession:
    """Aggregates everything recorded during one simulation run."""

    def __init__(self, config: Optional[TelemetryConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 stream: Optional[IO[str]] = None):
        self.config = config if config is not None else TelemetryConfig()
        if registry is not None:
            self.registry = registry
        elif self.config.metrics:
            self.registry = MetricsRegistry()
        else:
            self.registry = NULL_REGISTRY
        self.sampler: Optional[TimeSeriesSampler] = None
        if self.config.sample_interval > 0:
            self.sampler = TimeSeriesSampler(self.config.sample_interval,
                                             stream=stream)
        # bound exactly once: hot paths call through without re-testing
        # whether sampling is enabled
        self._sampler = self.sampler if self.sampler is not None \
            else NULL_SAMPLER
        self.tracer: Optional[PipelineTracer] = None
        if self.config.trace_events:
            self.tracer = PipelineTracer(self.config.trace_buffer)
        self._collectors: List[Collector] = []

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    # ----- collectors -----------------------------------------------------

    def add_collector(self, collector: Collector) -> None:
        """Register a ``() -> {name: cumulative_value}`` provider."""
        self._collectors.append(collector)

    def collect_counters(self) -> Dict[str, Any]:
        """Registry counters plus every collector's current values."""
        counters: Dict[str, Any] = dict(self.registry.counter_values())
        for collector in self._collectors:
            counters.update(collector())
        return counters

    # ----- sampling -------------------------------------------------------

    def take_sample(self, cycle: int,
                    gauges: Optional[Dict[str, Any]] = None
                    ) -> Optional[Dict[str, Any]]:
        return self._sampler.take(self, cycle, gauges)

    @property
    def sample_interval(self) -> int:
        """0 when sampling is off — run loops use this to skip
        scheduling sample points without touching ``sampler``."""
        return self._sampler.interval

    @property
    def samples(self) -> List[Dict[str, Any]]:
        return self._sampler.samples

    # ----- export ---------------------------------------------------------

    def chrome_trace(self, name: str = "repro") -> Dict[str, Any]:
        if self.tracer is None:
            raise ValueError(
                "trace_events was not enabled for this session")
        return chrome_trace(self.tracer, name=name, samples=self.samples)

    def format_metrics(self, title: str = "metrics") -> str:
        extra = {}
        for collector in self._collectors:
            extra.update(collector())
        return format_metrics(self.registry, extra_counters=extra,
                              title=title)

    def summary(self) -> Dict[str, Any]:
        """JSON-able digest for manifests and multi-process merging.

        The ``metrics`` entry folds collector counters into the
        registry's ``to_dict`` form, so two summaries merge with
        :meth:`MetricsRegistry.merge` / :meth:`MetricsRegistry.merge_all`.
        """
        metrics = self.registry.to_dict()
        counters = metrics["counters"]
        for collector in self._collectors:
            for name, value in collector().items():
                counters[name] = counters.get(name, 0) + value
        digest: Dict[str, Any] = {
            "config": self.config.to_dict(),
            "metrics": metrics,
            "sample_count": len(self.samples),
        }
        if self.tracer is not None:
            digest["trace"] = {"spans": len(self.tracer.spans),
                               "dropped_spans": self.tracer.dropped_spans,
                               "dropped_events": self.tracer.dropped_events}
        return digest
