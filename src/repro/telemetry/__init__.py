"""Telemetry: metrics registry, time-series sampling, pipeline tracing.

Stdlib-only by design — every other layer of the package (``cpu``,
``core``, ``runner``) may import from here without creating cycles.
See ``docs/telemetry.md`` for the metric catalogue and usage recipes.
"""

from .chrome import (chrome_trace, ensure_valid_chrome_trace,
                     validate_chrome_trace)
from .config import DEFAULT_TRACE_BUFFER, TelemetryConfig
from .metrics import (Counter, DEFAULT_BUCKETS, Gauge, Histogram,
                      MetricsRegistry, NULL_REGISTRY, NullRegistry,
                      format_metrics)
from .pipeline import FLUSHED, INFLIGHT, PipelineTracer, RETIRED
from .sampler import NULL_SAMPLER, NullSampler, TimeSeriesSampler
from .session import TelemetrySession

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_TRACE_BUFFER",
    "FLUSHED",
    "Gauge",
    "Histogram",
    "INFLIGHT",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SAMPLER",
    "NullRegistry",
    "NullSampler",
    "PipelineTracer",
    "RETIRED",
    "TelemetryConfig",
    "TelemetrySession",
    "TimeSeriesSampler",
    "chrome_trace",
    "ensure_valid_chrome_trace",
    "format_metrics",
    "validate_chrome_trace",
]
