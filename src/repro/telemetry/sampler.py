"""Interval time-series sampling of a running simulation.

Every ``interval`` cycles the simulator hands the sampler the current
cumulative counters (retired/executed/squashed instructions, per-class
issue counts, the steering evaluators' case/swap/per-module counters)
and the live pipeline gauges (ROB/RS occupancy, store-queue depth).
The sampler stores one flat row per sample and derives the interval
rates the paper's analysis cares about:

* ``ipc`` — instructions retired per cycle over the interval;
* ``wrong_path_frac`` — share of issued operations later squashed;
* ``<policy>.caseXX_share`` — steering case mix 00/01/10/11;
* ``<policy>.swap_rate`` — router swaps per steered operation;
* ``<policy>.module.<i>.bits_share`` — per-module switched-bit shares.

Rows are plain dicts, so the series is trivially JSONL: pass ``stream``
to have each row written (and flushed) the moment it is taken — that is
what ``repro stats --jsonl`` uses for watching a run live.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional

CASE_NAMES = ("00", "01", "10", "11")


class TimeSeriesSampler:
    """Accumulates per-interval rows of counter deltas and gauges."""

    def __init__(self, interval: int, stream: Optional[IO[str]] = None):
        if interval < 1:
            raise ValueError("sampling interval must be at least 1 cycle")
        self.interval = interval
        self.samples: List[Dict[str, Any]] = []
        self._stream = stream
        self._prev: Dict[str, int] = {}
        self._prev_cycle = 0

    def take(self, session, cycle: int,
             gauges: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Pull a session's counters and record one row.

        The polymorphic sampling entry point: sessions bind either this
        or :meth:`NullSampler.take` exactly once, so the hot path never
        re-tests whether sampling is enabled.
        """
        return self.sample(cycle, session.collect_counters(), gauges)

    def sample(self, cycle: int, counters: Dict[str, int],
               gauges: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Record one row; ``counters`` are cumulative, deltas derived."""
        row: Dict[str, Any] = {"cycle": cycle}
        dcycle = cycle - self._prev_cycle
        prev = self._prev
        deltas: Dict[str, int] = {}
        for key, value in counters.items():
            row[key] = value
            deltas[key] = delta = value - prev.get(key, 0)
            row["d_" + key] = delta
        if gauges:
            row.update(gauges)
        self._derive(row, deltas, dcycle)
        self._prev = dict(counters)
        self._prev_cycle = cycle
        self.samples.append(row)
        if self._stream is not None:
            self._stream.write(json.dumps(row, sort_keys=False) + "\n")
            self._stream.flush()
        return row

    @staticmethod
    def _derive(row: Dict[str, Any], deltas: Dict[str, int],
                dcycle: int) -> None:
        retired = deltas.get("retired")
        if retired is not None and dcycle > 0:
            row["ipc"] = round(retired / dcycle, 4)
        executed = deltas.get("executed")
        if executed:
            row["wrong_path_frac"] = round(
                deltas.get("squashed", 0) / executed, 4)
        # steering shares: every "<prefix>.ops" counter names one
        # evaluator; normalise its case/swap/module siblings by it
        for key, ops in deltas.items():
            if not key.endswith(".ops") or ".module." in key or not ops:
                continue
            prefix = key[:-len(".ops")]
            for name in CASE_NAMES:
                case_key = f"{prefix}.case{name}"
                if case_key in deltas:
                    row[f"{case_key}_share"] = round(
                        deltas[case_key] / ops, 4)
            swap_key = f"{prefix}.swaps"
            if swap_key in deltas:
                row[f"{prefix}.swap_rate"] = round(
                    deltas[swap_key] / ops, 4)
            module_bits = {k: d for k, d in deltas.items()
                          if k.startswith(f"{prefix}.module.")
                          and k.endswith(".bits")}
            total_bits = sum(module_bits.values())
            if total_bits:
                for bits_key, bits in module_bits.items():
                    row[f"{bits_key}_share"] = round(bits / total_bits, 4)

    def write_jsonl(self, path) -> int:
        """Write the collected series as JSONL; returns the row count.

        Unlike the live ``stream``, this rewrites the whole file through
        the caller's responsibility — used by ``repro stats`` when the
        run has already finished.
        """
        with open(path, "w", encoding="utf-8") as handle:
            for row in self.samples:
                handle.write(json.dumps(row, sort_keys=False) + "\n")
        return len(self.samples)


class NullSampler:
    """Sampling disabled: every operation is an unconditional no-op.

    Sessions without a sampler bind this once, so producers never pay a
    per-call ``if sampler is None`` on the hot path; ``interval == 0``
    lets run loops skip scheduling sample points entirely.
    """

    __slots__ = ()

    interval = 0

    @property
    def samples(self) -> List[Dict[str, Any]]:
        return []

    def take(self, session, cycle: int,
             gauges: Optional[Dict[str, Any]] = None) -> None:
        return None

    def sample(self, cycle: int, counters: Dict[str, int],
               gauges: Optional[Dict[str, Any]] = None) -> None:
        return None

    def write_jsonl(self, path) -> int:
        return 0


NULL_SAMPLER = NullSampler()
