"""Structured pipeline event tracing with a bounded ring buffer.

The tracer records one *span* per dynamic operation — the cycles at
which it was dispatched (fetched/renamed), issued to a functional unit,
completed (writeback), and left the machine (retired, squashed by a
flush, or still in flight at halt) — plus *module-assignment* instant
events emitted by steering evaluators.  Closed spans live in a ring
buffer (``collections.deque(maxlen=capacity)``), so arbitrarily long
runs keep the most recent ``capacity`` operations and count the rest in
``dropped_spans`` instead of exhausting memory.

Spans are plain tuples; export to Chrome trace-event JSON lives in
:mod:`repro.telemetry.chrome`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

# span end states
RETIRED = "retired"
FLUSHED = "flushed"
INFLIGHT = "inflight"

# Span: (seq, op_name, address, fu_index,
#        dispatch_cycle, issue_cycle, complete_cycle, end_cycle, state)
Span = Tuple[int, str, Optional[int], int, int, int, int, int, str]


class PipelineTracer:
    """Collects per-operation pipeline spans and steering events."""

    def __init__(self, capacity: int = 65_536):
        if capacity < 1:
            raise ValueError("trace capacity must be at least 1 span")
        self.capacity = capacity
        self.spans: Deque[Span] = deque(maxlen=capacity)
        self.events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.dropped_spans = 0
        self.dropped_events = 0
        # FU-class index -> display name; the simulator sets this when
        # it attaches the tracer (telemetry itself never imports the ISA)
        self.fu_names: Sequence[str] = ()
        # open spans of in-flight operations, keyed by sequence number;
        # bounded by the ROB size, not the run length
        self._open: Dict[int, List[Any]] = {}

    # ----- simulator hooks (hot only when tracing is enabled) -------------

    def dispatched(self, seq: int, name: str, address: Optional[int],
                   fu_index: int, cycle: int) -> None:
        self._open[seq] = [name, address, fu_index, cycle, -1, -1]

    def issued(self, seq: int, cycle: int) -> None:
        record = self._open.get(seq)
        if record is not None:
            record[4] = cycle

    def completed(self, seq: int, cycle: int) -> None:
        record = self._open.get(seq)
        if record is not None:
            record[5] = cycle

    def retired(self, seq: int, cycle: int) -> None:
        self._close(seq, cycle, RETIRED)

    def flushed(self, seq: int, cycle: int) -> None:
        self._close(seq, cycle, FLUSHED)

    def finish(self, cycle: int) -> None:
        """Close every still-open span at end of run."""
        for seq in sorted(self._open):
            self._close(seq, cycle, INFLIGHT)

    def _close(self, seq: int, cycle: int, state: str) -> None:
        record = self._open.pop(seq, None)
        if record is None:
            return
        name, address, fu_index, dispatch, issue, complete = record
        if len(self.spans) == self.capacity:
            self.dropped_spans += 1  # deque evicts the oldest span
        self.spans.append((seq, name, address, fu_index,
                           dispatch, issue, complete, cycle, state))

    # ----- steering hooks -------------------------------------------------

    def module_assigned(self, cycle: int, fu_name: str, label: str,
                        modules: Sequence[int],
                        swapped: Sequence[bool]) -> None:
        """One steering decision: which modules this cycle's ops drive."""
        if len(self.events) == self.events.maxlen:
            self.dropped_events += 1
        self.events.append({"cycle": cycle, "fu": fu_name, "label": label,
                            "modules": list(modules),
                            "swapped": [bool(s) for s in swapped]})

    # ----- queries --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def span_seqs(self) -> List[int]:
        """Sequence numbers of retained spans, oldest first."""
        return [span[0] for span in self.spans]
