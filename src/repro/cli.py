"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's experiments plus the library's
utilities:

====================  ====================================================
``workloads``         list the SPEC95-analogue kernel suite
``simulate``          run one workload on the out-of-order core
``table1/2/3``        regenerate the paper's tables (measured vs paper)
``figure1``           the 3-way routing example
``figure4``           the energy-reduction grid (kernel or synthetic)
``multiplier``        section 4.4 multiplier swapping
``gates``             router logic synthesis (QM-minimised LUT core)
``value-stats``       section 4.2's derived operand statistics
``sensitivity``       profile-input transfer study (compiler swapping)
``verilog``           export the synthesised router as Verilog
``trace``             capture a workload's issue trace to a file
``record``            record a complete post-run trace (final wrong-path
                      flags, config fingerprint, run summary in header)
``replay``            evaluate steering policies on a stored trace
``policies``          list registered policy families and their kernels
``asm``               assemble and run a .s file, dump results
``campaign``          fault-tolerant experiment grid with checkpoint/resume
``faultsweep``        steering savings vs info-bit fault rate
``stats``             run with telemetry, print the metrics table
``trace-export``      export a pipeline trace as Chrome trace-event JSON
====================  ====================================================

Robustness contract: ``KeyboardInterrupt`` exits with code 130 after
the campaign manifest has been flushed (the runner journals every task
atomically as it completes; a distributed worker additionally finalizes
its partially written shard manifest and releases its lease), and every
JSON/report file any command writes goes through the shared atomic
write-temp-then-rename helper — no stale ``.tmp`` file survives an
interrupt at any instant, including mid-write.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.bit_patterns import BitPatternCollector
from .analysis.energy import run_figure4, run_figure4_synthetic
from .analysis.figure1 import evaluate_figure1
from .analysis.module_usage import ModuleUsageCollector
from .analysis.multiplier import run_multiplier_experiment
from .analysis.report import (render_campaign, render_fault_sweep,
                              render_figure4, render_figure4_per_workload,
                              render_multiplier_swapping, render_table1,
                              render_table2, render_table3)
from .analysis.sensitivity import run_sensitivity_suite
from .analysis.value_stats import ValueStatsCollector, render_value_stats
from .core import build_lut, make_policy, paper_statistics
from .core.logic import estimate_router_cost, synthesize_lut_logic
from .core.registry import PolicyNameError, REGISTRY
from .core.verilog import export_router
from .core.steering import PolicyEvaluator, SharedEvaluationCoordinator
from .cpu.simulator import Simulator
from .telemetry import (TelemetryConfig, TelemetrySession,
                        validate_chrome_trace)
from .cpu.tracefile import TraceWriter, read_trace_header, replay
from .isa import encoding
from .streams import LiveSource, record
from .isa.assembler import assemble
from .isa.instructions import FUClass
from .runner import (CampaignError, CampaignSpec, DistWorker,
                     atomic_write_json, atomic_write_text, fault_sweep,
                     run_campaign, run_distributed)
from .workloads import all_workloads, workload


def _fu_class(name: str) -> FUClass:
    try:
        return FUClass(name.lower())
    except ValueError:
        raise argparse.ArgumentTypeError(f"unknown FU class '{name}'")


def _policy_kind(value: str) -> str:
    """argparse type for ``--policies``/``--policy``: any kind the
    registry resolves (kinds are parameterised — ``lut-<bits>`` — so
    validation goes through the family parsers, not a choices= list)."""
    try:
        REGISTRY.resolve(value)
    except PolicyNameError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def _selected_workloads(names: Optional[List[str]]):
    if not names:
        return all_workloads()
    return [workload(name) for name in names]


# --- commands -----------------------------------------------------------------

def cmd_workloads(args) -> int:
    print(f"{'name':10s} {'kind':4s} {'SPEC analogue':14s} description")
    print("-" * 76)
    for load in all_workloads():
        print(f"{load.name:10s} {load.kind:4s} {load.spec_analogue:14s}"
              f" {load.description}")
    return 0


def cmd_simulate(args) -> int:
    load = workload(args.workload)
    program = load.build(args.scale)
    sim = Simulator(program)
    result = sim.run()
    load_scale = args.scale or load.default_scale

    class Shim:
        memory = sim.memory

    load.check(program, Shim, load_scale)
    print(f"workload:     {load.name} (scale {load_scale})")
    print(f"instructions: {result.retired_instructions}")
    print(f"cycles:       {result.cycles}  (IPC {result.ipc:.2f})")
    print(f"mispredicts:  {result.branch_mispredictions}"
          f" / {result.branch_lookups} lookups")
    print(f"squashed ops: {result.squashed_ops}")
    print("issue counts: " + ", ".join(
        f"{fu.value}={count}" for fu, count in result.issue_counts.items()
        if count))
    print("architectural check: passed")
    return 0


def cmd_table1(args) -> int:
    ialu = BitPatternCollector(FUClass.IALU)
    fpau = BitPatternCollector(FUClass.FPAU)
    for load in _selected_workloads(args.workloads):
        sim = Simulator(load.build(args.scale))
        sim.add_listener(ialu)
        sim.add_listener(fpau)
        sim.run()
    print(render_table1({FUClass.IALU: ialu, FUClass.FPAU: fpau},
                        compare_paper=not args.no_paper))
    return 0


def cmd_table2(args) -> int:
    usage = ModuleUsageCollector([FUClass.IALU, FUClass.FPAU])
    for load in _selected_workloads(args.workloads):
        sim = Simulator(load.build(args.scale))
        sim.add_listener(usage)
        sim.run()
    print(render_table2(usage, compare_paper=not args.no_paper))
    return 0


def cmd_table3(args) -> int:
    results = run_multiplier_experiment(
        workloads=_selected_workloads(args.workloads), scale=args.scale)
    print(render_table3(results, compare_paper=not args.no_paper))
    return 0


def cmd_figure1(args) -> int:
    result = evaluate_figure1()
    no_swap = evaluate_figure1(allow_swap=False)
    print(f"default routing:            {result.default_energy} switched bits")
    print(f"optimal routing (swap ok):  {result.optimal_energy} bits"
          f" -> {100 * result.saving:.1f}% saving")
    print(f"optimal routing (no swap):  {no_swap.optimal_energy} bits"
          f" -> {100 * no_swap.saving:.1f}% saving")
    print("paper's alternative routing: 57% saving")
    return 0


def cmd_figure4(args) -> int:
    fu_class = _fu_class(args.fu)
    schemes = tuple(args.policies) if args.policies else None
    if args.synthetic:
        kwargs = {"schemes": schemes} if schemes else {}
        panel = run_figure4_synthetic(fu_class, cycles=args.cycles, **kwargs)
        print(render_figure4(panel, title=f"Figure 4 (calibrated synthetic),"
                                          f" {fu_class.value.upper()}"))
    else:
        modes = ("none", "hw", "compiler", "hw+compiler") \
            if args.compiler else ("none", "hw")
        loads = ([workload(name) for name in args.workloads]
                 if args.workloads else None)
        kwargs = {"schemes": schemes} if schemes else {}
        panel = run_figure4(fu_class, workloads=loads, scale=args.scale,
                            stats_source=args.stats, swap_modes=modes,
                            trace_cache_dir=args.cache_dir,
                            engine=args.engine, jobs=args.jobs,
                            trace_cache_limit_mb=args.cache_limit_mb,
                            **kwargs)
        print(render_figure4(panel))
        if args.per_workload:
            print()
            print(render_figure4_per_workload(panel))
        if args.cache_dir:
            # stderr, so two cached runs stay byte-identical on stdout
            print(f"trace cache: {panel.cache_hits} hits,"
                  f" {panel.cache_misses} misses,"
                  f" {panel.simulations} simulations", file=sys.stderr)
    return 0


def cmd_record(args) -> int:
    load = workload(args.workload)
    program = load.build(args.scale)
    fu_classes = [_fu_class(name) for name in args.fu] if args.fu else None
    memory = record(LiveSource(program), args.output, fu_classes=fu_classes)
    result = memory.result
    header = read_trace_header(args.output)
    print(f"simulated {result.retired_instructions} instructions,"
          f" recorded {len(memory)} issue groups to {args.output}")
    print(f"trace v{header['version']}: source {header['source']},"
          f" config {header['config']}")
    return 0


def cmd_multiplier(args) -> int:
    results = run_multiplier_experiment(
        workloads=_selected_workloads(args.workloads), scale=args.scale)
    print(render_table3(results))
    print()
    print(render_multiplier_swapping(results))
    return 0


def cmd_gates(args) -> int:
    fu_class = _fu_class(args.fu)
    stats = paper_statistics(fu_class)
    lut = build_lut(stats, args.modules, args.vector_bits)
    core = synthesize_lut_logic(lut)
    router = estimate_router_cost(lut, args.rs_entries)
    homes = "/".join(f"{h:02b}" for h in lut.homes)
    print(f"{fu_class.value.upper()} {args.vector_bits}-bit LUT"
          f" ({args.modules} modules, homes {homes})")
    print(f"  minimised LUT core:  {core.gates} gates,"
          f" {core.levels} levels, {core.literals} literals")
    print(f"  with forwarding from {args.rs_entries} RS entries:"
          f" {router.gates} gates, {router.levels} levels")
    print("  (paper, 4-bit IALU LUT: 58 gates/6 levels at 8 entries,"
          " 130/8 at 32)")
    from .core.bdd import build_bdd_lut, estimate_bdd_router_cost
    bdd_lut = build_bdd_lut(stats, args.modules, args.vector_bits)
    bdd_cost = estimate_bdd_router_cost(stats, args.modules,
                                        args.vector_bits, args.rs_entries)
    bdd_homes = "/".join(f"{h:02b}" for h in bdd_lut.homes)
    print(f"  BDD family (homes {bdd_homes}): {bdd_cost.nodes} decision"
          f" nodes -> {bdd_cost.gates} gates, {bdd_cost.levels} levels"
          f" with forwarding")
    return 0


def cmd_value_stats(args) -> int:
    int_stats = ValueStatsCollector(FUClass.IALU)
    fp_stats = ValueStatsCollector(FUClass.FPAU)
    for load in _selected_workloads(args.workloads):
        sim = Simulator(load.build(args.scale))
        sim.add_listener(int_stats)
        sim.add_listener(fp_stats)
        sim.run()
    print(render_value_stats(int_stats, fp_stats))
    return 0


def cmd_sensitivity(args) -> int:
    fu_class = _fu_class(args.fu)
    results = run_sensitivity_suite(fu_class, names=args.workloads or None,
                                    train_scale=args.train_scale,
                                    test_scale=args.test_scale)
    print(f"{'workload':10s} {'steer only':>10} {'self-prof':>10}"
          f" {'cross-prof':>10} {'penalty':>8}")
    for name, r in results.items():
        print(f"{name:10s} {100 * r.unswapped_reduction:>9.1f}%"
              f" {100 * r.self_profiled_reduction:>9.1f}%"
              f" {100 * r.cross_profiled_reduction:>9.1f}%"
              f" {100 * r.transfer_penalty:>7.2f}%")
    return 0


def cmd_verilog(args) -> int:
    fu_class = _fu_class(args.fu)
    stats = paper_statistics(fu_class)
    lut = build_lut(stats, args.modules, args.vector_bits)
    text = export_router(lut)
    if args.output:
        atomic_write_text(args.output, text)
        print(f"wrote {len(text.splitlines())} lines to {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_trace(args) -> int:
    load = workload(args.workload)
    program = load.build(args.scale)
    fu_classes = [_fu_class(name) for name in args.fu] if args.fu else None
    sim = Simulator(program)
    with TraceWriter(args.output, fu_classes=fu_classes,
                     name=load.name) as writer:
        sim.add_listener(writer)
        result = sim.run()
    print(f"simulated {result.retired_instructions} instructions,"
          f" wrote {writer.groups_written} issue groups to {args.output}")
    return 0


def cmd_replay(args) -> int:
    header = read_trace_header(args.trace)
    fu_class = _fu_class(args.fu)
    stats = paper_statistics(fu_class) if args.stats == "paper" else None
    evaluators = {}
    for kind in args.policies:
        policy = make_policy(kind, fu_class, args.modules,
                             stats=stats or paper_statistics(fu_class))
        evaluators[kind] = PolicyEvaluator(fu_class, args.modules, policy)
    groups = replay(args.trace, evaluators.values())
    print(f"replayed {groups} groups from '{header.get('name')}'")
    baseline = None
    for kind, evaluator in evaluators.items():
        totals = evaluator.totals()
        line = (f"  {kind:10s} {totals.switched_bits:10d} bits"
                f"  ({totals.bits_per_operation:.2f}/op)")
        if kind == "original":
            baseline = totals.switched_bits
        elif baseline:
            line += f"  {100 * (1 - totals.switched_bits / baseline):+.1f}%"
        print(line)
    return 0


def cmd_policies(args) -> int:
    """List registered policy families, parameters, and fused kernels."""
    from .analysis.report import _format_table
    import repro.batch  # noqa: F401  (importing registers batch kernels)
    from .batch import NUMPY_AVAILABLE
    header = ["family", "syntax", "stats", "swap", "kernels", "grid kinds",
              "description"]
    rows = []
    for family in REGISTRY.families():
        backends = REGISTRY.kernel_backends(family.name)
        rows.append([
            family.name,
            family.syntax,
            "yes" if family.needs_stats else "-",
            "yes" if family.supports_swap else "-",
            ", ".join(backends) if backends else "(object path)",
            ", ".join(family.grid_kinds) if family.grid_kinds else "-",
            family.description,
        ])
    print(_format_table(header, rows, "Registered policy families"))
    print(f"default CLI policies: {', '.join(REGISTRY.default_policies())}")
    print(f"figure-4 grid: {', '.join(REGISTRY.grid_kinds())}")
    if not NUMPY_AVAILABLE:
        print("numpy not importable: np kernels unavailable in this"
              " environment")
    return 0


def cmd_asm(args) -> int:
    with open(args.source, "r", encoding="utf-8") as handle:
        source = handle.read()
    program = assemble(source, name=args.source)
    sim = Simulator(program)
    result = sim.run()
    print(f"retired {result.retired_instructions} instructions in"
          f" {result.cycles} cycles (IPC {result.ipc:.2f})")
    for index in range(1, 32):
        value = sim.registers[index]
        if value:
            print(f"  r{index:<2d} = {encoding.to_signed(value):>12d}"
                  f"  (0x{value:08x})")
    for index in range(32, 64):
        value = sim.registers[index]
        if value:
            print(f"  f{index - 32:<2d} = {encoding.bits_to_float(value)!r}")
    return 0


def _campaign_spec(args) -> CampaignSpec:
    if args.workloads:
        names = args.workloads
    else:
        kind = "int" if args.fu in ("ialu", "imult") else "fp"
        names = [load.name for load in all_workloads(kind)]
    configs = {"default": {}}
    if args.configs_json:
        with open(args.configs_json, "r", encoding="utf-8") as handle:
            configs = json.load(handle)
    if args.watchdog is not None:
        for overrides in configs.values():
            overrides.setdefault("watchdog_cycles", args.watchdog)
    if args.max_cycles is not None:
        for overrides in configs.values():
            overrides.setdefault("max_cycles", args.max_cycles)
    return CampaignSpec(workloads=tuple(names),
                        policies=tuple(args.policies),
                        scales=(args.scale,),
                        configs=configs,
                        fault_rates=tuple(args.fault_rates),
                        fault_mode=args.fault_mode,
                        fu=args.fu,
                        seed=args.seed)


def _campaign_dist(args) -> int:
    """Distributed modes: local worker fleet or coordinator-only."""
    spec = _campaign_spec(args)
    result = run_distributed(
        spec, args.dir,
        workers=0 if args.coordinator else args.workers,
        shard_size=args.shard_size,
        lease_ttl=args.lease_ttl,
        max_shard_attempts=args.max_shard_attempts,
        executor="inline" if args.inline else "process",
        max_workers=args.max_workers,
        task_timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        trace_cache=not args.no_trace_cache,
        resume=args.resume)
    pending = [t.task_id for t in spec.tasks()
               if t.task_id not in result.tasks]
    report = render_campaign(spec.policies, result.tasks, pending)
    out_dir = Path(args.dir)
    atomic_write_text(out_dir / "report.txt", report + "\n")
    atomic_write_json(out_dir / "results.json",
                      {"spec": spec.to_dict(), "tasks": result.tasks})
    print(report)
    print(f"campaign: {result.done} done, {result.failed} failed,"
          f" {result.shards_done}/{result.total_shards} shards"
          f" ({result.shards_quarantined} quarantined)"
          f" (manifest: {result.manifest_path})")
    steals = result.counters.get("dist.shards.stolen", 0)
    requeues = result.counters.get("dist.shards.requeued", 0)
    if steals or requeues:
        print(f"fabric: {steals} shards stolen, {requeues} requeued")
    if not result.complete:
        print("resume with: python -m repro campaign ... --resume")
    return 1 if result.failed else 0


def cmd_campaign(args) -> int:
    try:
        if args.join:
            # worker-only: everything (spec, options, shard plan) comes
            # from the published campaign.json in --dir
            worker = DistWorker(args.dir, worker_id=args.worker_id)
            outcome = worker.run()
            print(f"worker {outcome.worker}: {outcome.shards_done} shards"
                  f" done, {outcome.shards_stolen} stolen,"
                  f" {outcome.tasks_done} tasks done,"
                  f" {outcome.tasks_failed} failed")
            return 1 if outcome.tasks_failed else 0
        if args.coordinator or args.workers:
            return _campaign_dist(args)
        spec = _campaign_spec(args)
        result = run_campaign(
            spec, args.dir,
            max_workers=args.max_workers,
            task_timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            executor="inline" if args.inline else "process",
            resume=args.resume,
            retry_failed=args.retry_failed,
            limit=args.limit,
            trace_cache=not args.no_trace_cache)
    except CampaignError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    pending = [t.task_id for t in spec.tasks()
               if t.task_id not in result.tasks]
    report = render_campaign(spec.policies, result.tasks, pending)
    out_dir = Path(args.dir)
    atomic_write_text(out_dir / "report.txt", report + "\n")
    atomic_write_json(out_dir / "results.json",
                      {"spec": spec.to_dict(), "tasks": result.tasks})
    print(report)
    print(f"campaign: {result.done} done, {result.failed} failed,"
          f" {result.skipped} already journaled,"
          f" {result.remaining} remaining"
          f" (manifest: {result.manifest_path})")
    if result.remaining:
        print("resume with: python -m repro campaign ... --resume")
    return 1 if result.failed else 0


def cmd_faultsweep(args) -> int:
    curve = fault_sweep(args.workload, args.rates,
                        fu_class=_fu_class(args.fu),
                        policy_kind=args.policy,
                        scale=args.scale,
                        mode=args.fault_mode,
                        seed=args.seed)
    print(render_fault_sweep(curve, policy=args.policy))
    if args.output:
        atomic_write_json(args.output,
                          {"workload": args.workload, "policy": args.policy,
                           "mode": args.fault_mode,
                           "curve": {str(rate): saving
                                     for rate, saving in curve.items()}})
        print(f"wrote {args.output}")
    return 0


def _telemetry_policies(sim: Simulator, session: TelemetrySession,
                        fu_class: FUClass,
                        kinds: List[str]) -> None:
    """Attach telemetry-reporting policy evaluators to a simulator."""
    if not kinds:
        return
    stats = paper_statistics(fu_class)
    num_modules = sim.config.modules(fu_class)
    coordinator = SharedEvaluationCoordinator(fu_class)
    for kind in kinds:
        policy = make_policy(kind, fu_class, num_modules, stats=stats)
        coordinator.add(PolicyEvaluator(fu_class, num_modules, policy,
                                        telemetry=session))
    sim.add_listener(coordinator)


def cmd_stats(args) -> int:
    load = workload(args.workload)
    program = load.build(args.scale)
    stream = sys.stdout if args.live else None
    session = TelemetrySession(
        TelemetryConfig(metrics=True, sample_interval=args.interval),
        stream=stream)
    sim = Simulator(program, telemetry=session)
    _telemetry_policies(sim, session, _fu_class(args.fu), args.policies)
    result = sim.run()
    print(session.format_metrics(
        title=f"telemetry: {load.name} (scale {args.scale},"
              f" {result.cycles} cycles, IPC {result.ipc:.2f})"))
    print(f"samples: {len(session.samples)}"
          f" (every {args.interval} cycles)")
    if args.jsonl:
        count = session.sampler.write_jsonl(args.jsonl)
        print(f"wrote {count} time-series rows to {args.jsonl}")
    return 0


def cmd_trace_export(args) -> int:
    load = workload(args.workload)
    program = load.build(args.scale)
    session = TelemetrySession(
        TelemetryConfig(metrics=True, sample_interval=args.interval,
                        trace_events=True, trace_buffer=args.buffer))
    sim = Simulator(program, telemetry=session)
    _telemetry_policies(sim, session, _fu_class(args.fu), args.policies)
    sim.run()
    payload = session.chrome_trace(load.name)
    problems = validate_chrome_trace(payload)
    if problems:
        print("trace failed schema validation:", file=sys.stderr)
        for problem in problems[:10]:
            print(f"  {problem}", file=sys.stderr)
        return 1
    atomic_write_json(args.output, payload)
    tracer = session.tracer
    print(f"wrote {len(payload['traceEvents'])} trace events"
          f" ({len(tracer.spans)} spans, {tracer.dropped_spans} dropped)"
          f" to {args.output}")
    print("view: https://ui.perfetto.dev  (Open trace file)"
          " or chrome://tracing")
    return 0


def cmd_serve(args) -> int:
    from .server import ServerConfig, serve_main
    config = ServerConfig(
        host=args.host, port=args.port, cache_dir=args.cache_dir,
        executor=args.executor, max_workers=args.max_workers,
        max_batch=args.max_batch, queue_limit=args.queue_limit,
        request_timeout=args.timeout, drain_grace=args.drain_grace,
        allow_delay=args.allow_delay,
        allowed_policies=tuple(args.policies or ()))
    return serve_main(config)


def cmd_loadtest(args) -> int:
    from .server import loadgen
    serve_args: List[str] = []
    if args.cache_dir:
        serve_args += ["--cache-dir", args.cache_dir]
    return loadgen.run_from_args(args, serve_args=serve_args)


# --- parser --------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    from . import __version__
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Dynamic Functional Unit Assignment"
                    " for Low Power' (DATE 2003)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale(p):
        p.add_argument("--scale", type=int, default=1,
                       help="workload scale factor (default 1)")

    def add_workloads(p):
        p.add_argument("--workloads", nargs="*",
                       help="workload names (default: full suite)")
        p.add_argument("--no-paper", action="store_true",
                       help="omit the paper's published columns")

    p = sub.add_parser("workloads", help="list the kernel suite")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("simulate", help="run one workload out of order")
    p.add_argument("workload")
    add_scale(p)
    p.set_defaults(func=cmd_simulate)

    for name, func in (("table1", cmd_table1), ("table2", cmd_table2),
                       ("table3", cmd_table3)):
        p = sub.add_parser(name, help=f"regenerate {name}")
        add_scale(p)
        add_workloads(p)
        p.set_defaults(func=func)

    p = sub.add_parser("figure1", help="the 3-way routing example")
    p.set_defaults(func=cmd_figure1)

    p = sub.add_parser("figure4", help="energy reduction grid")
    p.add_argument("fu", choices=["ialu", "fpau"])
    add_scale(p)
    p.add_argument("--synthetic", action="store_true",
                   help="use paper-calibrated synthetic streams")
    p.add_argument("--cycles", type=int, default=15_000,
                   help="synthetic stream length")
    p.add_argument("--stats", choices=["measured", "paper"],
                   default="measured", help="LUT synthesis statistics")
    p.add_argument("--compiler", action="store_true",
                   help="include compiler-swapping regimes")
    p.add_argument("--per-workload", action="store_true",
                   help="also print the per-workload breakdown")
    p.add_argument("--workloads", nargs="*",
                   help="workload names (default: suite for the FU class)")
    p.add_argument("--policies", nargs="*", type=_policy_kind, default=None,
                   help="steering schemes to grid (default: every"
                        " registered family's grid kinds; see"
                        " 'repro policies')")
    p.add_argument("--cache-dir",
                   help="content-addressed trace cache: record streams on"
                        " miss, replay instead of simulating on hit")
    p.add_argument("--cache-limit-mb", type=float, default=None,
                   help="prune the trace cache LRU-style past this size"
                        " after the run (entries this run used are never"
                        " evicted)")
    p.add_argument("--engine",
                   choices=["auto", "batch-np", "batch", "object"],
                   default="auto",
                   help="evaluation engine: columnar kernels vectorized on"
                        " NumPy (batch-np), the same kernels in pure Python"
                        " (batch), or the reference object loop (object);"
                        " auto (default) picks batch-np when NumPy is"
                        " importable and falls back to batch")
    p.add_argument("--jobs", type=int, default=1,
                   help="fan per-workload evaluation across N worker"
                        " processes (output is byte-stable for any N)")
    p.set_defaults(func=cmd_figure4)

    p = sub.add_parser("multiplier", help="section 4.4 experiments")
    add_scale(p)
    add_workloads(p)
    p.set_defaults(func=cmd_multiplier)

    p = sub.add_parser("gates", help="router logic synthesis")
    p.add_argument("--fu", default="ialu", choices=["ialu", "fpau"])
    p.add_argument("--vector-bits", type=int, default=4)
    p.add_argument("--modules", type=int, default=4)
    p.add_argument("--rs-entries", type=int, default=8)
    p.set_defaults(func=cmd_gates)

    p = sub.add_parser("value-stats", help="section 4.2 derived statistics")
    add_scale(p)
    add_workloads(p)
    p.set_defaults(func=cmd_value_stats)

    p = sub.add_parser("sensitivity", help="profile-input transfer study")
    p.add_argument("--fu", default="ialu", choices=["ialu", "fpau"])
    p.add_argument("--workloads", nargs="*")
    p.add_argument("--train-scale", type=int, default=1)
    p.add_argument("--test-scale", type=int, default=2)
    p.set_defaults(func=cmd_sensitivity)

    p = sub.add_parser("verilog", help="export the router as Verilog")
    p.add_argument("--fu", default="ialu", choices=["ialu", "fpau"])
    p.add_argument("--vector-bits", type=int, default=4)
    p.add_argument("--modules", type=int, default=4)
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_verilog)

    p = sub.add_parser("trace", help="capture an issue trace")
    p.add_argument("workload")
    p.add_argument("-o", "--output", required=True)
    add_scale(p)
    p.add_argument("--fu", nargs="*",
                   help="FU classes to capture (default: all)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("record",
                       help="record a complete post-run trace (v2: final"
                            " wrong-path flags + run summary)")
    p.add_argument("workload")
    p.add_argument("-o", "--output", required=True)
    add_scale(p)
    p.add_argument("--fu", nargs="*",
                   help="FU classes to record (default: all)")
    p.set_defaults(func=cmd_record)

    p = sub.add_parser("replay", help="evaluate policies on a trace")
    p.add_argument("trace")
    p.add_argument("--fu", default="ialu")
    p.add_argument("--modules", type=int, default=4)
    p.add_argument("--policies", nargs="*", type=_policy_kind,
                   default=list(REGISTRY.default_policies()))
    p.add_argument("--stats", choices=["paper"], default="paper")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("policies",
                       help="list registered policy families, their"
                            " parameters, and fused kernel backends")
    p.set_defaults(func=cmd_policies)

    p = sub.add_parser("asm", help="assemble and run a .s file")
    p.add_argument("source")
    p.set_defaults(func=cmd_asm)

    p = sub.add_parser("campaign",
                       help="fault-tolerant experiment grid with resume")
    p.add_argument("--dir", required=True,
                   help="campaign directory (manifest, report, results)")
    p.add_argument("--workloads", nargs="*",
                   help="workload names (default: suite matching --fu)")
    p.add_argument("--policies", nargs="*", type=_policy_kind,
                   default=list(REGISTRY.default_policies()))
    p.add_argument("--fu", default="ialu",
                   choices=[fu.value for fu in FUClass])
    add_scale(p)
    p.add_argument("--fault-rates", nargs="*", type=float, default=[0.0],
                   help="info-bit flip rates to sweep (default: 0.0)")
    p.add_argument("--fault-mode", choices=["info", "operand"],
                   default="info")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--configs-json",
                   help="JSON file mapping config name -> MachineConfig"
                        " overrides")
    p.add_argument("--watchdog", type=int, default=None,
                   help="watchdog_cycles applied to every config")
    p.add_argument("--max-cycles", type=int, default=None,
                   help="max_cycles applied to every config")
    p.add_argument("--max-workers", type=int, default=2)
    p.add_argument("--timeout", type=float, default=600.0,
                   help="per-task timeout in seconds")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts per task (exponential backoff)")
    p.add_argument("--backoff", type=float, default=0.5,
                   help="base backoff delay in seconds")
    p.add_argument("--limit", type=int, default=0,
                   help="stop after N newly finished tasks (0 = no limit)")
    p.add_argument("--resume", action="store_true",
                   help="continue an existing manifest")
    p.add_argument("--retry-failed", action="store_true",
                   help="on resume, re-run tasks recorded as failed")
    p.add_argument("--inline", action="store_true",
                   help="run tasks in-process (no isolation; tests/sweeps)")
    p.add_argument("--no-trace-cache", action="store_true",
                   help="simulate every task instead of replaying"
                        " content-addressed recorded streams")
    dist = p.add_argument_group(
        "distributed", "coordinator/worker fabric over a shared --dir"
        " (leases, work stealing, host-loss recovery; docs/runner.md)")
    dist.add_argument("--workers", type=int, default=0,
                      help="publish the campaign and drive it with N local"
                           " worker processes (0 = classic single-host"
                           " runner)")
    dist.add_argument("--coordinator", action="store_true",
                      help="publish the shard queue and merge results, but"
                           " run no local workers (fleet joins via --join)")
    dist.add_argument("--join", action="store_true",
                      help="join the campaign already published in --dir"
                           " as a worker (ignores grid flags)")
    dist.add_argument("--worker-id", default=None,
                      help="stable worker name for --join (default:"
                           " host-pid)")
    dist.add_argument("--shard-size", type=int, default=1,
                      help="tasks per lease-based work unit")
    dist.add_argument("--lease-ttl", type=float, default=15.0,
                      help="seconds before an un-renewed lease is stolen")
    dist.add_argument("--max-shard-attempts", type=int, default=3,
                      help="lease attempts before a shard is quarantined")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("faultsweep",
                       help="steering savings vs info-bit fault rate")
    p.add_argument("workload")
    p.add_argument("--fu", default="ialu", choices=["ialu", "fpau"])
    p.add_argument("--policy", default="lut-4", type=_policy_kind)
    p.add_argument("--rates", nargs="*", type=float,
                   default=[0.0, 0.01, 0.02, 0.05, 0.1])
    p.add_argument("--fault-mode", choices=["info", "operand"],
                   default="info")
    p.add_argument("--seed", type=int, default=0)
    add_scale(p)
    p.add_argument("-o", "--output", help="also write the curve as JSON")
    p.set_defaults(func=cmd_faultsweep)

    p = sub.add_parser("stats",
                       help="run one workload with telemetry and print"
                            " the metrics table")
    p.add_argument("--workload", required=True)
    add_scale(p)
    p.add_argument("--interval", type=int, default=1000,
                   help="time-series sampling interval in cycles")
    p.add_argument("--fu", default="ialu",
                   choices=[fu.value for fu in FUClass])
    p.add_argument("--policies", nargs="*", type=_policy_kind,
                   default=list(REGISTRY.default_policies()[:2]),
                   help="steering policies to score (empty for none;"
                        " default: baseline + the paper's proposal)")
    p.add_argument("--jsonl",
                   help="write the sampled time series to this JSONL file")
    p.add_argument("--live", action="store_true",
                   help="stream each sample row to stdout as it is taken")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("trace-export",
                       help="export a pipeline event trace as Chrome"
                            " trace-event JSON (Perfetto-loadable)")
    p.add_argument("--workload", required=True)
    p.add_argument("-o", "--output", required=True)
    add_scale(p)
    p.add_argument("--interval", type=int, default=200,
                   help="counter-track sampling interval in cycles")
    p.add_argument("--buffer", type=int, default=65_536,
                   help="ring-buffer capacity in spans (oldest evicted)")
    p.add_argument("--fu", default="ialu",
                   choices=[fu.value for fu in FUClass])
    p.add_argument("--policies", nargs="*", type=_policy_kind,
                   default=list(REGISTRY.default_policies()[1:2]),
                   help="policies emitting module-assignment events"
                        " (default: the paper's proposal)")
    p.set_defaults(func=cmd_trace_export)

    p = sub.add_parser("serve",
                       help="run the evaluation server (HTTP/JSON, request"
                            " coalescing, trace-cache backed)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="listening port (0 = OS-assigned; the bound port"
                        " is announced on stdout)")
    p.add_argument("--cache-dir",
                   help="shared trace-cache directory (enables"
                        " cross-process coalescing via TraceCacheLock)")
    p.add_argument("--executor", choices=["pool", "inline"],
                   default="pool",
                   help="pool: crash-isolated process pool (default);"
                        " inline: threads in this process")
    p.add_argument("--max-workers", type=int, default=2,
                   help="concurrent evaluations (pool width)")
    p.add_argument("--max-batch", type=int, default=32,
                   help="max admitted items per pool batch")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="max distinct evaluations in flight before 429")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="per-request evaluation timeout (seconds)")
    p.add_argument("--drain-grace", type=float, default=30.0,
                   help="seconds SIGTERM waits for in-flight work")
    p.add_argument("--allow-delay", action="store_true",
                   help="honour the test-only delay_ms request field")
    p.add_argument("--policies", nargs="*", type=_policy_kind,
                   default=None,
                   help="restrict which policy kinds this server will"
                        " evaluate (default: any registered kind)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("loadtest",
                       help="load-test a running server (or spawn one)"
                            " and report latency/coalescing/hit-rate")
    from .server.loadgen import add_arguments as _loadgen_arguments
    _loadgen_arguments(p, policy_type=_policy_kind)
    p.add_argument("--cache-dir",
                   help="trace-cache directory for the spawned server")
    p.set_defaults(func=cmd_loadtest)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # the campaign runner flushes its manifest before re-raising,
        # so ^C always leaves a resumable journal; 130 = 128 + SIGINT
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # output piped into a pager/head that closed early — not an error
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
