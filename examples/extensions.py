#!/usr/bin/env python3
"""Beyond the headline result: the paper's sketched extensions.

Four things the paper discusses but does not evaluate, all implemented
here:

1. VLIW-style *static* assignment (section 2's dynamic-vs-static claim);
2. the partially-guarded-FU hybrid (related work [8]);
3. the heterogeneous fast/slow module hybrid (related work [19]);
4. Verilog export of the synthesised router (section 5's gate counts).

Run:  python examples/extensions.py
"""

from repro.compiler import build_static_policy
from repro.core import (GuardedFUPowerModel, HeterogeneousPowerModel,
                        OriginalPolicy, PolicyEvaluator, build_lut,
                        paper_statistics, scheme_for, standard_variants)
from repro.core.hybrid import CriticalityAwareLUTPolicy
from repro.core.logic import estimate_router_cost, synthesize_lut_logic
from repro.core.steering import LUTPolicy
from repro.core.verilog import emit_lut_module
from repro.cpu import Simulator
from repro.isa.instructions import FUClass
from repro.workloads import workload


def main() -> None:
    stats = paper_statistics(FUClass.IALU)
    scheme = scheme_for(FUClass.IALU)
    lut = build_lut(stats, 4, 4)
    load = workload("m88ksim")
    program = load.build(1)

    # --- 1. static (VLIW) vs dynamic assignment --------------------------
    static_policy = build_static_policy(program, FUClass.IALU, stats, 4)
    evaluators = {
        "FCFS": PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy()),
        "static (VLIW)": PolicyEvaluator(FUClass.IALU, 4, static_policy),
        "dynamic LUT-4": PolicyEvaluator(FUClass.IALU, 4,
                                         LUTPolicy(lut=lut, scheme=scheme)),
    }
    # --- 2./3. hybrids ----------------------------------------------------
    guarded = PolicyEvaluator(FUClass.IALU, 4,
                              LUTPolicy(lut=lut, scheme=scheme))
    guarded.power = GuardedFUPowerModel(FUClass.IALU, 4)
    evaluators["LUT-4 + guarded FUs"] = guarded
    variants = standard_variants(4, 2)
    hetero = PolicyEvaluator(FUClass.IALU, 4, CriticalityAwareLUTPolicy(
        lut=lut, scheme=scheme, variants=variants))
    hetero.power = HeterogeneousPowerModel(FUClass.IALU, variants)
    evaluators["LUT-4 on fast/slow pool"] = hetero

    sim = Simulator(program)
    for evaluator in evaluators.values():
        sim.add_listener(evaluator)
    sim.run()

    base = evaluators["FCFS"].power.switched_bits
    print(f"IALU input switching on {load.name} "
          f"({base} bits under FCFS routing):\n")
    for name, evaluator in evaluators.items():
        bits = evaluator.power.switched_bits
        note = ""
        if isinstance(evaluator.power, HeterogeneousPowerModel):
            note = (f"  [weighted energy"
                    f" {evaluator.power.weighted_energy:.0f}]")
        print(f"  {name:24s} {bits:8d} bits"
              f"  ({100 * (1 - bits / base):+5.1f}%){note}")

    # --- 4. router synthesis ---------------------------------------------
    core = synthesize_lut_logic(lut)
    router = estimate_router_cost(lut, 8)
    print(f"\nSynthesised router: LUT core {core.gates} gates"
          f" / {core.levels} levels; with forwarding {router.gates} gates"
          f" / {router.levels} levels (paper: 58 / 6)")
    print("\nFirst lines of the emitted Verilog:\n")
    for line in emit_lut_module(lut).splitlines()[:8]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
