#!/usr/bin/env python3
"""Quickstart: assemble a program, simulate it out-of-order, and compare
power-aware steering against first-come-first-serve routing.

Run:  python examples/quickstart.py
"""

from repro import PolicyEvaluator, Simulator, assemble, make_policy
from repro.core import OriginalPolicy, paper_statistics
from repro.isa.instructions import FUClass

# A small mixed kernel: accumulate signed products and a running sum.
SOURCE = """
.data
xs: .word 3, -7, 12, -1, 25, -14, 6, -9, 31, -2, 8, -5
ys: .word -2, 4, -6, 8, -10, 12, -14, 16, -18, 20, -22, 24
results: .space 8
.text
main:
    la   r2, xs
    la   r3, ys
    li   r4, 12         # elements
    li   r5, 0          # dot product
    li   r6, 0          # sum of xs
loop:
    lw   r7, 0(r2)
    lw   r8, 0(r3)
    mult r9, r7, r8
    add  r5, r5, r9
    add  r6, r6, r7
    addi r2, r2, 4
    addi r3, r3, 4
    addi r4, r4, -1
    bne  r4, r0, loop
    la   r10, results
    sw   r5, 0(r10)
    sw   r6, 4(r10)
    halt
"""


def main() -> None:
    program = assemble(SOURCE, name="quickstart")

    # The paper's 4-bit-vector LUT policy, synthesised from the paper's
    # published Table 1/2 statistics, against the FCFS baseline.
    stats = paper_statistics(FUClass.IALU)
    lut = PolicyEvaluator(FUClass.IALU, 4,
                          make_policy("lut-4", FUClass.IALU, 4, stats=stats))
    fcfs = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())

    sim = Simulator(program)
    sim.add_listener(lut)
    sim.add_listener(fcfs)
    result = sim.run()

    print(f"program: {program.name}")
    print(f"  retired {result.retired_instructions} instructions in"
          f" {result.cycles} cycles (IPC {result.ipc:.2f})")
    print(f"  dot product = {sim.registers[5] - (1 << 32) if sim.registers[5] >> 31 else sim.registers[5]}")
    print()
    lut_bits = lut.totals().switched_bits
    fcfs_bits = fcfs.totals().switched_bits
    print(f"IALU switched input bits, FCFS routing:  {fcfs_bits}")
    print(f"IALU switched input bits, 4-bit LUT:     {lut_bits}")
    if fcfs_bits:
        print(f"reduction: {100 * (1 - lut_bits / fcfs_bits):.1f}%")


if __name__ == "__main__":
    main()
