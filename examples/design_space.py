#!/usr/bin/env python3
"""Design-space exploration: how do module count, LUT vector width, and
home-allocation strategy trade off?

Sweeps the steering LUT over Num(M) in {2, 3, 4, 6, 8} and vector widths
{2, 4, 8} bits on a synthetic IALU stream calibrated to the paper's
Table 1/2 statistics, and prints the router's estimated gate cost next
to each configuration — the engineering trade the paper's section 5
discusses.

Run:  python examples/design_space.py
"""

from repro.core import (OriginalPolicy, PolicyEvaluator,
                        allocate_homes, allocate_homes_paper_rule,
                        build_lut, estimate_gate_cost, paper_statistics)
from repro.core.statistics import CaseStatistics
from repro.core.steering import LUTPolicy
from repro.core.info_bits import scheme_for
from repro.isa.instructions import FUClass
from repro.workloads import SyntheticStream

CYCLES = 8_000
RS_ENTRIES = 8


def evaluate(stats: CaseStatistics, num_modules: int, vector_bits: int,
             paper_rule: bool, seed: int = 7) -> float:
    """Reduction of one LUT configuration vs FCFS on the same stream."""
    homes = (allocate_homes_paper_rule(stats, num_modules) if paper_rule
             else allocate_homes(stats, num_modules))
    lut = build_lut(stats, num_modules, vector_bits, homes=homes)
    scheme = scheme_for(stats.fu_class)
    steered = PolicyEvaluator(stats.fu_class, num_modules,
                              LUTPolicy(lut=lut, scheme=scheme))
    baseline = PolicyEvaluator(stats.fu_class, num_modules, OriginalPolicy())
    stream = SyntheticStream(stats, num_modules=num_modules, seed=seed)
    for group in stream.groups(CYCLES):
        steered(group)
        baseline(group)
    base_bits = baseline.totals().switched_bits
    if not base_bits:
        return 0.0
    return 1.0 - steered.totals().switched_bits / base_bits


def main() -> None:
    stats = paper_statistics(FUClass.IALU)
    print(f"IALU steering design space ({CYCLES} busy cycles,"
          f" paper-calibrated stream)\n")
    header = (f"{'Num(M)':>6}  {'vector':>6}  {'reduction':>9}"
              f"  {'paper-rule':>10}  {'gates':>5}  {'levels':>6}")
    print(header)
    print("-" * len(header))
    for num_modules in (2, 3, 4, 6, 8):
        for vector_bits in (2, 4, 8):
            if vector_bits // 2 > num_modules:
                continue
            optimised = evaluate(stats, num_modules, vector_bits,
                                 paper_rule=False)
            paper = evaluate(stats, num_modules, vector_bits,
                             paper_rule=True)
            cost = estimate_gate_cost(vector_bits, RS_ENTRIES)
            print(f"{num_modules:>6}  {vector_bits:>5}b"
                  f"  {100 * optimised:>8.1f}%  {100 * paper:>9.1f}%"
                  f"  {cost.gates:>5}  {cost.levels:>6}")
    print("\n(The 'paper-rule' column uses the section 4.3 informal home"
          "\n allocation; 'reduction' uses the library's optimised one.)")


if __name__ == "__main__":
    main()
