#!/usr/bin/env python3
"""Bring your own workload: write a kernel in the mini ISA, validate it
against a Python golden model, then measure how much the paper's
steering and the compiler swap pass save on it.

The kernel below is a banded matrix-vector product — signed integer
accumulation with a stride pattern the registered suite doesn't have.

Run:  python examples/custom_workload.py
"""

from repro import Simulator, assemble, run_program
from repro.analysis.energy import measure_statistics
from repro.compiler import swap_optimize
from repro.core import (HardwareSwapper, OriginalPolicy, PolicyEvaluator,
                        choose_swap_case, make_policy, scheme_for)
from repro.isa import encoding
from repro.isa.instructions import FUClass

N = 24
BAND = 2


def band_value(i: int, j: int) -> int:
    return ((i * 7 + j * 3) % 23) - 11


def vector_value(j: int) -> int:
    return ((j * 5) % 17) - 8


def build_source() -> str:
    matrix = []
    for i in range(N):
        for d in range(-BAND, BAND + 1):
            j = i + d
            matrix.append(band_value(i, j) if 0 <= j < N else 0)
    vec = [vector_value(j) for j in range(N)]
    rows = ", ".join(str(v) for v in matrix)
    xs = ", ".join(str(v) for v in vec)
    return f"""
.data
band: .word {rows}
x: .word {xs}
y: .space {4 * N}
.text
main:
    la   r2, band
    la   r3, x
    la   r4, y
    li   r5, 0              # i
iloop:
    li   r6, 0              # acc
    li   r7, {-BAND}        # d
dloop:
    add  r8, r5, r7         # j = i + d
    slti r9, r8, 0
    bne  r9, r0, dnext      # j < 0
    li   r10, {N}
    bge  r8, r10, dnext     # j >= N
    lw   r11, 0(r2)
    slli r12, r8, 2
    add  r12, r12, r3
    lw   r13, 0(r12)
    mult r14, r11, r13
    add  r6, r6, r14
dnext:
    addi r2, r2, 4
    addi r7, r7, 1
    li   r10, {BAND + 1}
    bne  r7, r10, dloop
    slli r12, r5, 2
    add  r12, r12, r4
    sw   r6, 0(r12)
    addi r5, r5, 1
    li   r10, {N}
    bne  r5, r10, iloop
    halt
"""


def golden() -> list:
    y = []
    for i in range(N):
        acc = 0
        for d in range(-BAND, BAND + 1):
            j = i + d
            if 0 <= j < N:
                acc += band_value(i, j) * vector_value(j)
        y.append(acc & encoding.INT_MASK)
    return y


def main() -> None:
    program = assemble(build_source(), name="banded-matvec")

    # 1. validate architecturally against the Python model
    result = run_program(program)
    base = program.symbol_address("y")
    expected = golden()
    for i, value in enumerate(expected):
        assert result.memory.load_word(base + 4 * i) == value, f"y[{i}]"
    print(f"golden check passed: {result.instructions} instructions,"
          f" y[0..3] = {[encoding.to_signed(v) for v in expected[:4]]}")

    # 2. measure this workload's own operand statistics and build a LUT
    stats, _, _ = measure_statistics([program], FUClass.IALU)
    scheme = scheme_for(FUClass.IALU)
    policy = make_policy("lut-4", FUClass.IALU, 4, stats=stats)
    swapper = HardwareSwapper(scheme, choose_swap_case(stats))

    def measure(prog, swap):
        steered = PolicyEvaluator(FUClass.IALU, 4, policy,
                                  pre_swapper=swapper if swap else None)
        fcfs = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        sim = Simulator(prog)
        sim.add_listener(steered)
        sim.add_listener(fcfs)
        sim.run()
        return steered.totals().switched_bits, fcfs.totals().switched_bits

    lut_bits, fcfs_bits = measure(program, swap=False)
    lut_swap_bits, _ = measure(program, swap=True)
    print(f"IALU bits, FCFS: {fcfs_bits};  LUT-4: {lut_bits}"
          f" ({100 * (1 - lut_bits / fcfs_bits):.1f}% saved);"
          f"  LUT-4+HW swap: {lut_swap_bits}"
          f" ({100 * (1 - lut_swap_bits / fcfs_bits):.1f}% saved)")

    # 3. add the compiler pass on top
    swapped_program, report = swap_optimize(program)
    swapped_bits, _ = measure(swapped_program, swap=True)
    print(f"compiler pass swapped {report.swapped}/{report.candidates}"
          f" static candidates; LUT-4+HW+compiler:"
          f" {100 * (1 - swapped_bits / fcfs_bits):.1f}% saved")


if __name__ == "__main__":
    main()
