#!/usr/bin/env python3
"""Full paper reproduction at a reduced scale: Tables 1-3, Figure 1,
both Figure 4 panels (kernel-based and calibrated-synthetic), and the
whole-chip estimate.

Run:  python examples/paper_reproduction.py [scale]

Scale 1 (default) takes a couple of minutes; the benchmark suite under
``benchmarks/`` runs the same experiments with timing instrumentation.
"""

import sys
import time

from repro.analysis import (render_figure4, render_multiplier_swapping,
                            render_table1, render_table2, render_table3)
from repro.analysis.energy import (chip_level_estimate, measure_statistics,
                                   run_figure4, run_figure4_synthetic)
from repro.analysis.figure1 import evaluate_figure1
from repro.analysis.module_usage import ModuleUsageCollector
from repro.analysis.multiplier import run_multiplier_experiment
from repro.cpu import Simulator
from repro.isa.instructions import FUClass
from repro.workloads import all_workloads, float_suite, integer_suite
from repro.analysis.bit_patterns import BitPatternCollector


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    started = time.time()

    # --- Tables 1 and 2: one pass over the full suite --------------------
    ialu_patterns = BitPatternCollector(FUClass.IALU)
    fpau_patterns = BitPatternCollector(FUClass.FPAU)
    usage = ModuleUsageCollector()
    for workload in all_workloads():
        sim = Simulator(workload.build(scale))
        sim.add_listener(ialu_patterns)
        sim.add_listener(fpau_patterns)
        sim.add_listener(usage)
        sim.run()
    print(render_table1({FUClass.IALU: ialu_patterns,
                         FUClass.FPAU: fpau_patterns}))
    print()
    print(render_table2(usage))
    print()

    # --- Table 3 and multiplier swapping ----------------------------------
    multipliers = run_multiplier_experiment(scale=scale)
    print(render_table3(multipliers))
    print()
    print(render_multiplier_swapping(multipliers))
    print()

    # --- Figure 1 ----------------------------------------------------------
    figure1 = evaluate_figure1()
    print(f"Figure 1 routing example: default {figure1.default_energy} bits,"
          f" optimal {figure1.optimal_energy} bits"
          f" -> {100 * figure1.saving:.0f}% saving (paper: 57%)")
    print()

    # --- Figure 4, kernel suites ------------------------------------------
    panels = {}
    for fu_class in (FUClass.IALU, FUClass.FPAU):
        panels[fu_class] = run_figure4(fu_class, scale=scale)
        print(render_figure4(panels[fu_class]))
        print()

    # --- Figure 4, synthetic streams calibrated to the paper's Table 1/2 --
    for fu_class in (FUClass.IALU, FUClass.FPAU):
        synthetic = run_figure4_synthetic(fu_class, cycles=15_000)
        print(render_figure4(
            synthetic,
            title=f"Figure 4 (calibrated synthetic):"
                  f" {fu_class.value.upper()}"))
        print()

    # --- whole-chip estimate ----------------------------------------------
    estimate = chip_level_estimate(panels[FUClass.IALU], panels[FUClass.FPAU])
    print(f"Whole-chip dynamic power reduction estimate"
          f" (execution units are ~22% of chip power):"
          f" {100 * estimate:.1f}% (paper: ~4%)")
    print(f"\n[total {time.time() - started:.0f}s]")


if __name__ == "__main__":
    main()
