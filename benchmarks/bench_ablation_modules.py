"""Ablation A5: module count.

The paper notes power savings "can be achieved with two or more
functional units".  This bench sweeps Num(M) over {1, 2, 3, 4, 6, 8}
on the calibrated IALU stream and reports the 4-bit LUT reduction —
showing where the duplicated-module approach starts and saturates.
"""

from conftest import record, run_once

from repro.core import (OriginalPolicy, PolicyEvaluator, build_lut,
                        paper_statistics, scheme_for)
from repro.core.steering import LUTPolicy
from repro.isa.instructions import FUClass
from repro.workloads import SyntheticStream

CYCLES = 6_000


def test_ablation_module_count(benchmark):
    stats = paper_statistics(FUClass.IALU)
    scheme = scheme_for(FUClass.IALU)

    def reduction(num_modules):
        vector_bits = 2 * min(2, num_modules)
        lut = build_lut(stats, num_modules, vector_bits)
        steered = PolicyEvaluator(FUClass.IALU, num_modules,
                                  LUTPolicy(lut=lut, scheme=scheme))
        baseline = PolicyEvaluator(FUClass.IALU, num_modules,
                                   OriginalPolicy())
        stream = SyntheticStream(stats, num_modules=num_modules, seed=21)
        for group in stream.groups(CYCLES):
            steered(group)
            baseline(group)
        base = baseline.totals().switched_bits
        return 1.0 - steered.totals().switched_bits / base if base else 0.0

    def experiment():
        return {m: reduction(m) for m in (1, 2, 3, 4, 6, 8)}

    results = run_once(benchmark, experiment)
    text = "\n".join(f"Num(M) = {m}:  {100 * value:6.1f}%"
                     for m, value in results.items())
    record(benchmark, "Ablation A5: 4-bit LUT reduction vs module count",
           text)

    # with a single module there is nothing to steer
    assert results[1] == 0.0
    # two or more modules save power, as the paper claims
    assert results[2] > 0.0
    # more modules help: monotone within noise, and 8 beats 2 clearly
    assert results[8] > results[2]
    assert results[4] > results[2]
    benchmark.extra_info["by_modules"] = {str(m): round(v, 4)
                                          for m, v in results.items()}
