"""Table 1 reproduction: operand bit patterns for the IALU and FPAU.

Regenerates the eight (information-bit case x commutativity) rows with
occurrence frequencies and per-operand bit probabilities, measured over
the full workload suite, next to the paper's published column.
"""

from conftest import record, run_once

from repro.analysis.bit_patterns import BitPatternCollector
from repro.analysis.report import render_table1
from repro.cpu.simulator import Simulator
from repro.isa.instructions import FUClass
from repro.workloads import all_workloads


def test_table1(benchmark, bench_scale):
    def experiment():
        ialu = BitPatternCollector(FUClass.IALU)
        fpau = BitPatternCollector(FUClass.FPAU)
        for load in all_workloads():
            sim = Simulator(load.build(bench_scale))
            sim.add_listener(ialu)
            sim.add_listener(fpau)
            sim.run()
        return ialu, fpau

    ialu, fpau = run_once(benchmark, experiment)
    record(benchmark, "Table 1: bit patterns in data (measured vs paper)",
           render_table1({FUClass.IALU: ialu, FUClass.FPAU: fpau}))

    # section 4.2's core claim holds: an integer operand whose
    # information bit is 0 has predominantly-zero remaining bits
    assert ialu.merged_bit_prob(0b00, 0) < 0.5
    # case 00 dominates integer traffic, as in the paper's Table 1
    assert ialu.case_frequency(0b00) > 0.5
    benchmark.extra_info["ialu_case00_freq"] = ialu.case_frequency(0b00)
    benchmark.extra_info["fpau_case00_freq"] = fpau.case_frequency(0b00)
