"""Figure 4(b) reproduction: FPAU energy reduction grid.

Same grid as Figure 4(a), over the SPEC95-analogue floating point
suite.  The paper's FPAU findings: ~18% for the 4-bit LUT, swapping
adds little (the OR-of-low-4 information bit only predicts the trailing
bits when it is 0), and the FPAU is insensitive to the LUT vector width
because it rarely issues more than one operation per cycle (Table 2).
"""

from conftest import record, run_once

from repro.analysis.energy import run_figure4
from repro.analysis.report import render_figure4
from repro.isa.instructions import FUClass


def test_figure4_fpau(benchmark, bench_scale):
    panel = run_once(
        benchmark,
        lambda: run_figure4(FUClass.FPAU, scale=bench_scale,
                            swap_modes=("none", "hw", "compiler",
                                        "hw+compiler")))
    record(benchmark, "Figure 4(b): FPAU energy reduction",
           render_figure4(panel))

    # steering helps, Original gains nothing by definition
    assert panel.reduction("lut-4") > 0.0
    assert panel.reduction("full-ham") >= panel.reduction("lut-4") - 0.02
    assert panel.reduction("original") == 0.0

    # the FPAU barely benefits from hardware swapping (paper insight 2)
    swap_gain = (panel.reduction("lut-4", "hw")
                 - panel.reduction("lut-4", "none"))
    assert swap_gain < 0.05

    # the FPAU is insensitive to vector width (paper insight 5)
    assert abs(panel.reduction("lut-8") - panel.reduction("lut-4")) < 0.05

    for scheme in ("full-ham", "1bit-ham", "lut-8", "lut-4", "lut-2"):
        benchmark.extra_info[scheme] = {
            mode: round(panel.reduction(scheme, mode), 4)
            for mode in ("none", "hw", "hw+compiler")}
