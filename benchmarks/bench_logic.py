"""Router logic synthesis bench (section 5 costs, made constructive).

Minimises each steering LUT's module-select logic with Quine-McCluskey
and reports gate/level/literal counts, plus the full router cost with
information-bit forwarding — reproducing the paper's two published
data points (58 gates/6 levels at 8 RS entries; 130/8 at 32).
"""

from conftest import record, run_once

from repro.core import build_lut, paper_statistics
from repro.core.logic import estimate_router_cost, synthesize_lut_logic
from repro.isa.instructions import FUClass


def test_router_logic_synthesis(benchmark):
    def experiment():
        rows = []
        for fu_class in (FUClass.IALU, FUClass.FPAU):
            stats = paper_statistics(fu_class)
            for vector_bits in (2, 4, 8):
                lut = build_lut(stats, 4, vector_bits)
                core = synthesize_lut_logic(lut)
                router8 = estimate_router_cost(lut, 8)
                router32 = estimate_router_cost(lut, 32)
                rows.append((fu_class.value, vector_bits, core,
                             router8, router32))
        return rows

    rows = run_once(benchmark, experiment)
    lines = [f"{'FU':5s} {'vec':>4} {'core gates':>10} {'levels':>6}"
             f" {'literals':>8} {'router@8RS':>10} {'router@32RS':>11}"]
    for fu, vector_bits, core, router8, router32 in rows:
        lines.append(f"{fu:5s} {vector_bits:>3}b {core.gates:>10}"
                     f" {core.levels:>6} {core.literals:>8}"
                     f" {router8.gates:>10} {router32.gates:>11}")
    lines.append("paper (IALU 4-bit LUT): 58 gates/6 levels @8,"
                 " 130 gates/8 levels @32")
    record(benchmark, "Router logic synthesis (Quine-McCluskey)",
           "\n".join(lines))

    by_key = {(fu, vb): router8 for fu, vb, _, router8, _ in rows}
    ialu4 = by_key[("ialu", 4)]
    assert (ialu4.gates, ialu4.levels) == (58, 6)
    # cost grows with vector width for both FU classes
    for fu in ("ialu", "fpau"):
        assert by_key[(fu, 8)].lut_gates > by_key[(fu, 2)].lut_gates
    benchmark.extra_info["ialu_lut4_router_gates"] = ialu4.gates
