#!/usr/bin/env python3
"""Hot-path performance benchmark: simulated cycles/sec and ops/sec.

Runs the out-of-order engine (and the steering evaluation layer) on the
stress-test workloads scaled up to realistic lengths, and reports
throughput so performance regressions on the wakeup / store-queue /
accounting paths are visible from PR to PR.  Unlike the ``bench_*``
pytest drivers, this is a plain script so CI can smoke it directly::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick
    make bench-perf          # writes BENCH_hotpath.json

The scenarios mirror ``tests/cpu/test_simulator_stress.py``: dependent
load/store loops, wrong-path multiplier traffic, and a deep ROB full of
in-flight producers — exactly the paths where a quadratic wakeup or a
linear store scan shows up as wall-clock.
"""

from __future__ import annotations

import argparse
import os
import resource
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.core.statistics import paper_statistics          # noqa: E402
from repro.runner.atomic import atomic_write_json           # noqa: E402
from repro.core.steering import (OriginalPolicy, PolicyEvaluator,  # noqa: E402
                                 SharedEvaluationCoordinator, make_policy)
from repro.cpu.config import MachineConfig                  # noqa: E402
from repro.cpu.simulator import Simulator                   # noqa: E402
from repro.isa.assembler import assemble                    # noqa: E402
from repro.isa.instructions import FUClass                  # noqa: E402
from repro.telemetry import TelemetryConfig, TelemetrySession  # noqa: E402


def store_load_loop(iterations: int) -> str:
    """The tiny-machine stress kernel: store/load/accumulate per trip."""
    return f"""
.data
buf: .space 32
.text
    la r1, buf
    li r2, {iterations}
loop:
    mult r3, r2, r2
    sw r3, 0(r1)
    lw r4, 0(r1)
    add r5, r5, r4
    addi r2, r2, -1
    bne r2, r0, loop
    halt
"""


def wrong_path_divides(iterations: int) -> str:
    """Mispredicted loop exits repeatedly issue wrong-path divides."""
    return f"""
.text
    li r1, {iterations}
    li r2, 7
    li r3, 0
loop:
    addi r1, r1, -1
    beq r1, r0, done
    div r4, r2, r1
    mult r3, r2, r2
    j loop
done:
    mult r5, r2, r2
    halt
"""


def wakeup_pressure(iterations: int) -> str:
    """A long dependence fan-out: one producer wakes many consumers
    while a slow divide at the ROB head keeps everything in flight."""
    body = "\n".join(f"    add r{5 + (k % 20)}, r3, r2" for k in range(24))
    return f"""
.data
arr: .word 3, 1, 4, 1, 5, 9, 2, 6
.text
    la r1, arr
    li r2, {iterations}
loop:
    div r3, r2, r2
    lw r4, 0(r1)
{body}
    add r2, r2, r4
    addi r2, r2, -4
    bne r2, r0, loop
    halt
"""


def store_queue_pressure(iterations: int) -> str:
    """Many in-flight stores with dependent loads: exercises
    disambiguation and store-to-load forwarding every cycle."""
    stores = "\n".join(f"    sw r3, {4 * k}(r1)" for k in range(8))
    loads = "\n".join(f"    lw r{10 + k}, {4 * k}(r1)" for k in range(8))
    return f"""
.data
buf: .space 64
.text
    la r1, buf
    li r2, {iterations}
loop:
    add r3, r3, r2
{stores}
{loads}
    add r4, r4, r10
    addi r2, r2, -1
    bne r2, r0, loop
    halt
"""


def deep_machine_config() -> MachineConfig:
    """A wider, deeper machine than the paper's: keeps hundreds of
    operations in flight so super-linear bookkeeping dominates."""
    return MachineConfig(fetch_width=8, dispatch_width=8, retire_width=8,
                         rob_entries=256, rs_entries_per_class=64)


def scenarios(quick: bool):
    scale = 400 if quick else 4000
    default = MachineConfig()
    deep = deep_machine_config()
    return [
        ("store-load-loop", store_load_loop(scale), default),
        ("wrong-path-divides", wrong_path_divides(scale), default),
        ("wakeup-pressure", wakeup_pressure(4 * scale), deep),
        ("store-queue-pressure", store_queue_pressure(scale), deep),
    ]


def run_scenario(name: str, source: str, config: MachineConfig,
                 with_evaluators: bool, telemetry: bool = False) -> dict:
    program = assemble(source)
    # the campaign runner's production telemetry shape: metrics only,
    # no sampling, no trace ring — the cheapest "on" configuration
    session = (TelemetrySession(TelemetryConfig(metrics=True))
               if telemetry else None)
    sim = Simulator(program, config, telemetry=session)
    if with_evaluators:
        stats = paper_statistics(FUClass.IALU)
        modules = config.modules(FUClass.IALU)
        coordinator = SharedEvaluationCoordinator(FUClass.IALU)
        coordinator.add(PolicyEvaluator(FUClass.IALU, modules,
                                        OriginalPolicy(),
                                        telemetry=session))
        coordinator.add(PolicyEvaluator(
            FUClass.IALU, modules,
            make_policy("lut-4", FUClass.IALU, modules, stats=stats),
            telemetry=session))
        sim.add_listener(coordinator)
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    return {
        "name": name,
        "cycles": result.cycles,
        "executed_ops": result.executed_ops,
        "wall_seconds": round(elapsed, 6),
        "cycles_per_sec": round(result.cycles / elapsed, 1),
        "ops_per_sec": round(result.executed_ops / elapsed, 1),
    }


def best_of(repeats: int, *args, **kwargs) -> dict:
    best = None
    for _ in range(repeats):
        run = run_scenario(*args, **kwargs)
        if best is None or run["wall_seconds"] < best["wall_seconds"]:
            best = run
    return best


def bench_figure4_replay(quick: bool) -> dict:
    """Wall-clock of a figure-4 panel: all-live legacy loop vs replay.

    The simulate-once/replay-many refactor claims that replaying a
    recorded issue stream through evaluator sets is much cheaper than
    re-simulating the program for each of them.  The *all-live
    baseline* here reproduces the pre-refactor architecture: one
    simulation for the statistics pass plus one fresh simulation per
    swap mode per program version.  The *replay* side is today's
    ``run_figure4`` against a warm trace cache: zero simulations, every
    pass driven from the recorded streams.  Both sides build identical
    evaluators and must land on bit-identical panel cells.
    """
    import shutil
    import tempfile

    from repro.analysis.energy import (_build_evaluators, run_figure4,
                                       statistics_from_sources)
    from repro.compiler import swap_optimize
    from repro.compiler.swap_pass import denser_first_from_swap_case
    from repro.core.info_bits import scheme_for
    from repro.core.swapping import choose_swap_case
    from repro.cpu.config import default_config
    from repro.streams import LiveSource, drive
    from repro.workloads import workload

    names = ["compress", "li"] if quick else ["compress", "li", "go", "cc1"]
    schemes = ("original", "lut-4")
    modes = ("none", "hw", "compiler", "hw+compiler")
    loads = [workload(name) for name in names]
    config = default_config()
    fu = FUClass.IALU
    scheme = scheme_for(fu)
    num_modules = config.modules(fu)

    cache_dir = tempfile.mkdtemp(prefix="bench-trace-cache-")
    try:
        # warm: simulates each program version once, records it, and
        # primes the memoised LUT synthesis both timed sides reuse
        run_figure4(fu, workloads=loads, schemes=schemes, swap_modes=modes,
                    trace_cache_dir=cache_dir)

        # --- all-live baseline: the pre-refactor pass structure -------
        start = time.perf_counter()
        programs = [load.build(None) for load in loads]
        stats, _, _ = statistics_from_sources(
            [LiveSource(program, config) for program in programs],
            fu, config, scheme)
        direction = {fu: denser_first_from_swap_case(choose_swap_case(stats))}
        live_cells: dict = {}
        live_sims = len(programs)  # the statistics pass
        for program in programs:
            versions = {"none": program, "hw": program}
            swapped, _report = swap_optimize(program, denser_first=direction)
            versions["compiler"] = versions["hw+compiler"] = swapped
            for mode in modes:
                evaluators = _build_evaluators(
                    fu, num_modules, stats, scheme, schemes,
                    with_hw_swap=mode in ("hw", "hw+compiler"))
                drive(LiveSource(versions[mode], config),
                      list(evaluators.values()))
                live_sims += 1
                for kind, evaluator in evaluators.items():
                    cell = (kind, mode)
                    live_cells[cell] = live_cells.get(cell, 0) \
                        + evaluator.totals().switched_bits
        live_wall = time.perf_counter() - start

        # --- replay: run_figure4 against the warm cache ---------------
        start = time.perf_counter()
        replayed = run_figure4(fu, workloads=loads, schemes=schemes,
                               swap_modes=modes, trace_cache_dir=cache_dir)
        replay_wall = time.perf_counter() - start
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    replay_cells = {cell: result.switched_bits
                    for cell, result in replayed.cells.items()}
    if live_cells != replay_cells:
        raise AssertionError(
            "replayed figure-4 cells differ from the all-live baseline")
    return {
        "workloads": names,
        "schemes": list(schemes),
        "swap_modes": list(modes),
        "live_wall_seconds": round(live_wall, 6),
        "live_simulations": live_sims,
        "replay_wall_seconds": round(replay_wall, 6),
        "replay_cache_hits": replayed.cache_hits,
        "replay_simulations": replayed.simulations,
        "speedup": round(live_wall / replay_wall, 2),
    }


def bench_batch_replay(quick: bool, repeats: int = 1) -> dict:
    """Warm-cache figure-4 replay: object path vs columnar batch engine.

    Both sides start from the same fully warm trace cache, so neither
    simulates anything — the comparison isolates the evaluation layer.
    The *object* side re-decodes the recorded stream into IssueGroup
    objects and walks them through evaluator method calls; the *batch*
    side memory-maps the packed sidecar and runs the fused per-policy
    kernels over flat arrays.  The object path is the reference oracle:
    every cell and every statistics row must be bit-identical or this
    benchmark raises.
    """
    import shutil
    import tempfile

    from repro.analysis.energy import run_figure4
    from repro.batch import numpy_available
    from repro.workloads import workload

    names = ["compress", "li"] if quick else ["compress", "li", "go", "cc1"]
    schemes = ("original", "lut-4")
    modes = ("none", "hw", "compiler", "hw+compiler")
    loads = [workload(name) for name in names]
    fu = FUClass.IALU
    have_numpy = numpy_available()

    cache_dir = tempfile.mkdtemp(prefix="bench-batch-cache-")
    try:
        # warm: simulates each program version once, records the trace,
        # and writes the packed sidecar the batch side memory-maps
        run_figure4(fu, workloads=loads, schemes=schemes, swap_modes=modes,
                    trace_cache_dir=cache_dir, engine="batch")
        if have_numpy:
            # untimed priming run so numpy's import and first-touch
            # costs don't land in the first timed batch-np repeat
            run_figure4(fu, workloads=loads, schemes=schemes,
                        swap_modes=modes, trace_cache_dir=cache_dir,
                        engine="batch-np")

        object_wall = batch_wall = batch_np_wall = None
        obj = bat = npr = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            obj = run_figure4(fu, workloads=loads, schemes=schemes,
                              swap_modes=modes, trace_cache_dir=cache_dir,
                              engine="object")
            elapsed = time.perf_counter() - start
            if object_wall is None or elapsed < object_wall:
                object_wall = elapsed
            start = time.perf_counter()
            bat = run_figure4(fu, workloads=loads, schemes=schemes,
                              swap_modes=modes, trace_cache_dir=cache_dir,
                              engine="batch")
            elapsed = time.perf_counter() - start
            if batch_wall is None or elapsed < batch_wall:
                batch_wall = elapsed
            if have_numpy:
                start = time.perf_counter()
                npr = run_figure4(fu, workloads=loads, schemes=schemes,
                                  swap_modes=modes,
                                  trace_cache_dir=cache_dir,
                                  engine="batch-np")
                elapsed = time.perf_counter() - start
                if batch_np_wall is None or elapsed < batch_np_wall:
                    batch_np_wall = elapsed
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    def _cells(result):
        return {key: (cell.switched_bits, cell.operations,
                      cell.hardware_swaps)
                for key, cell in result.cells.items()}

    for contender, label in ((bat, "batch"), (npr, "batch-np")):
        if contender is None:
            continue
        if _cells(obj) != _cells(contender) \
                or repr(obj.statistics) != repr(contender.statistics) \
                or obj.per_workload != contender.per_workload:
            raise AssertionError(f"{label} engine diverged from the "
                                 "object-path reference oracle")
    return {
        "workloads": names,
        "schemes": list(schemes),
        "swap_modes": list(modes),
        "numpy_available": have_numpy,
        "object_wall_seconds": round(object_wall, 6),
        "batch_wall_seconds": round(batch_wall, 6),
        "batch_np_wall_seconds": (round(batch_np_wall, 6)
                                  if batch_np_wall is not None else None),
        "object_simulations": obj.simulations,
        "batch_simulations": bat.simulations,
        "batch_speedup": round(object_wall / batch_wall, 2),
        "batch_np_speedup": (round(object_wall / batch_np_wall, 2)
                             if batch_np_wall is not None else None),
    }


def peak_rss_mb() -> float:
    """Process high-water RSS in MiB (ru_maxrss: KiB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes
        rss /= 1024
    return rss / 1024.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workloads (CI smoke run)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="runs per scenario; the fastest is reported "
                             "(default 3, or 1 with --quick)")
    parser.add_argument("--no-evaluators", action="store_true",
                        help="simulate without steering evaluators attached")
    parser.add_argument("--assert-telemetry-overhead", type=float,
                        default=None, metavar="PCT",
                        help="exit 1 if telemetry-on costs more than PCT%% "
                             "over telemetry-off (within-run comparison, so "
                             "machine speed cancels out)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="previous BENCH_hotpath.json to compare the "
                             "telemetry-off numbers against")
    parser.add_argument("--assert-baseline-within", type=float,
                        default=None, metavar="PCT",
                        help="with --baseline: exit 1 if telemetry-off "
                             "total cycles/sec dropped more than PCT%%")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write results as JSON (e.g. BENCH_hotpath.json)")
    parser.add_argument("--no-figure4", action="store_true",
                        help="skip the figure-4 replay-vs-simulate section")
    parser.add_argument("--assert-replay-speedup", type=float,
                        default=None, metavar="X",
                        help="exit 1 if the warm-cache figure-4 run is not "
                             "at least X times faster than the all-live run")
    parser.add_argument("--assert-batch-speedup", type=float,
                        default=None, metavar="X",
                        help="exit 1 if the batch engine is not at least X "
                             "times faster than the object path on the same "
                             "warm cache")
    parser.add_argument("--assert-batch-np-speedup", type=float,
                        default=None, metavar="X",
                        help="exit 1 if the NumPy batch engine is not at "
                             "least X times faster than the object path "
                             "(fails when numpy is unavailable: the gate "
                             "is meaningless without the backend)")
    parser.add_argument("--assert-peak-rss-mb", type=float,
                        default=None, metavar="MB",
                        help="exit 1 if the benchmark process's peak RSS "
                             "exceeds MB MiB (guards the lazy replay path "
                             "against re-materialising whole streams)")
    args = parser.parse_args(argv)

    if args.repeats is not None:
        repeats = max(1, args.repeats)
    else:
        repeats = 1 if args.quick else 3
    rows = []
    for name, source, config in scenarios(args.quick):
        off = best_of(repeats, name, source, config,
                      with_evaluators=not args.no_evaluators)
        on = best_of(repeats, name, source, config,
                     with_evaluators=not args.no_evaluators, telemetry=True)
        overhead = 100.0 * (on["wall_seconds"] / off["wall_seconds"] - 1.0)
        row = dict(off)
        row["telemetry_on"] = {
            "wall_seconds": on["wall_seconds"],
            "cycles_per_sec": on["cycles_per_sec"],
            "ops_per_sec": on["ops_per_sec"],
        }
        row["telemetry_overhead_pct"] = round(overhead, 2)
        rows.append(row)
        print(f"{row['name']:<24} {row['cycles']:>10} cycles "
              f"{row['wall_seconds']:>9.3f}s "
              f"{row['cycles_per_sec']:>12.0f} cyc/s "
              f"{row['ops_per_sec']:>12.0f} ops/s "
              f"telemetry {overhead:+6.1f}%")

    total_cycles = sum(r["cycles"] for r in rows)
    total_ops = sum(r["executed_ops"] for r in rows)
    total_wall = sum(r["wall_seconds"] for r in rows)
    total_wall_on = sum(r["telemetry_on"]["wall_seconds"] for r in rows)
    total_overhead = 100.0 * (total_wall_on / total_wall - 1.0)
    summary = {
        "quick": args.quick,
        "with_evaluators": not args.no_evaluators,
        "scenarios": rows,
        "total": {
            "cycles": total_cycles,
            "executed_ops": total_ops,
            "wall_seconds": round(total_wall, 6),
            "cycles_per_sec": round(total_cycles / total_wall, 1),
            "ops_per_sec": round(total_ops / total_wall, 1),
            "telemetry_on": {
                "wall_seconds": round(total_wall_on, 6),
                "cycles_per_sec": round(total_cycles / total_wall_on, 1),
                "ops_per_sec": round(total_ops / total_wall_on, 1),
            },
            "telemetry_overhead_pct": round(total_overhead, 2),
        },
    }
    print(f"{'TOTAL':<24} {total_cycles:>10} cycles "
          f"{total_wall:>9.3f}s "
          f"{summary['total']['cycles_per_sec']:>12.0f} cyc/s "
          f"{summary['total']['ops_per_sec']:>12.0f} ops/s "
          f"telemetry {total_overhead:+6.1f}%")
    if not args.no_figure4:
        replay = bench_figure4_replay(args.quick)
        summary["figure4_replay"] = replay
        print(f"{'figure4-replay':<24} all-live"
              f" {replay['live_wall_seconds']:.3f}s"
              f" ({replay['live_simulations']} sims)"
              f"  replay {replay['replay_wall_seconds']:.3f}s"
              f" ({replay['replay_cache_hits']} hits,"
              f" {replay['replay_simulations']} sims)"
              f"  speedup {replay['speedup']:.2f}x")
        batch = bench_batch_replay(args.quick, repeats=repeats)
        summary["figure4_batch"] = batch
        if batch["batch_np_speedup"] is not None:
            np_part = (f"  batch-np {batch['batch_np_wall_seconds']:.3f}s"
                       f" ({batch['batch_np_speedup']:.2f}x)")
        else:
            np_part = "  batch-np n/a (no numpy)"
        print(f"{'figure4-batch':<24} object"
              f" {batch['object_wall_seconds']:.3f}s"
              f"  batch {batch['batch_wall_seconds']:.3f}s"
              f"  speedup {batch['batch_speedup']:.2f}x"
              + np_part)
    summary["peak_rss_mb"] = round(peak_rss_mb(), 1)
    print(f"{'peak-rss':<24} {summary['peak_rss_mb']:.1f} MiB")
    baseline = None
    if args.baseline:
        # read before --output in case both name the same file
        import json
        with open(args.baseline) as handle:
            baseline = json.load(handle)["total"]["cycles_per_sec"]
    if args.output:
        # write-temp-then-rename: a benchmark killed mid-write must not
        # clobber the previous BENCH_hotpath.json with a torn file
        atomic_write_json(args.output, summary)
        print(f"wrote {args.output}")
    failed = False
    if args.assert_replay_speedup is not None:
        replay = summary.get("figure4_replay")
        if replay is None:
            print("FAIL: --assert-replay-speedup needs the figure-4 "
                  "section (drop --no-figure4)", file=sys.stderr)
            failed = True
        elif replay["speedup"] < args.assert_replay_speedup:
            print(f"FAIL: warm-cache figure-4 speedup {replay['speedup']:.2f}x"
                  f" below the {args.assert_replay_speedup:.1f}x floor",
                  file=sys.stderr)
            failed = True
    if args.assert_batch_speedup is not None:
        batch = summary.get("figure4_batch")
        if batch is None:
            print("FAIL: --assert-batch-speedup needs the figure-4 "
                  "section (drop --no-figure4)", file=sys.stderr)
            failed = True
        elif batch["batch_speedup"] < args.assert_batch_speedup:
            print(f"FAIL: batch-engine speedup {batch['batch_speedup']:.2f}x"
                  f" below the {args.assert_batch_speedup:.1f}x floor",
                  file=sys.stderr)
            failed = True
    if args.assert_batch_np_speedup is not None:
        batch = summary.get("figure4_batch")
        if batch is None:
            print("FAIL: --assert-batch-np-speedup needs the figure-4 "
                  "section (drop --no-figure4)", file=sys.stderr)
            failed = True
        elif batch["batch_np_speedup"] is None:
            print("FAIL: --assert-batch-np-speedup set but numpy is "
                  "unavailable, so the NumPy backend never ran",
                  file=sys.stderr)
            failed = True
        elif batch["batch_np_speedup"] < args.assert_batch_np_speedup:
            print(f"FAIL: NumPy batch-engine speedup "
                  f"{batch['batch_np_speedup']:.2f}x below the "
                  f"{args.assert_batch_np_speedup:.1f}x floor",
                  file=sys.stderr)
            failed = True
    if (args.assert_peak_rss_mb is not None
            and summary["peak_rss_mb"] > args.assert_peak_rss_mb):
        print(f"FAIL: peak RSS {summary['peak_rss_mb']:.1f} MiB exceeds "
              f"the {args.assert_peak_rss_mb:.1f} MiB budget",
              file=sys.stderr)
        failed = True
    if (args.assert_telemetry_overhead is not None
            and total_overhead > args.assert_telemetry_overhead):
        print(f"FAIL: telemetry overhead {total_overhead:.1f}% exceeds "
              f"{args.assert_telemetry_overhead:.1f}% budget",
              file=sys.stderr)
        failed = True
    if baseline is not None:
        # the telemetry-OFF trajectory: dormant hooks must stay free
        current = summary["total"]["cycles_per_sec"]
        drop = 100.0 * (1.0 - current / baseline)
        print(f"baseline {baseline:.0f} cyc/s -> {current:.0f} cyc/s "
              f"({-drop:+.1f}%)")
        if (args.assert_baseline_within is not None
                and drop > args.assert_baseline_within):
            print(f"FAIL: telemetry-off throughput dropped {drop:.1f}% "
                  f"(budget {args.assert_baseline_within:.1f}%)",
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
