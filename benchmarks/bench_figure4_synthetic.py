"""Figure 4, calibrated reproduction: synthetic streams drawn from the
paper's own Table 1 (case and bit-probability) and Table 2 (usage)
distributions.

This is the apples-to-apples comparison with the published bars: the
policies see operand statistics identical to the paper's measurements,
independent of how closely our kernel suite matches SPEC 95.  The paper
quotes 17% (IALU) and 18% (FPAU) for the 4-bit LUT with hardware
swapping.
"""

import pytest
from conftest import record, run_once

from repro.analysis.energy import run_figure4_synthetic
from repro.analysis.report import render_figure4
from repro.isa.instructions import FUClass

CYCLES = 15_000


def test_figure4_synthetic_ialu(benchmark):
    panel = run_once(
        benchmark,
        lambda: run_figure4_synthetic(FUClass.IALU, cycles=CYCLES))
    record(benchmark, "Figure 4(a), calibrated synthetic: IALU",
           render_figure4(panel, title="Figure 4(a) on paper-calibrated"
                                       " operand statistics"))

    lut4_hw = panel.reduction("lut-4", "hw")
    # the paper's headline: 17% for the 4-bit LUT with hardware swapping
    assert lut4_hw == pytest.approx(0.17, abs=0.05)
    assert panel.reduction("full-ham", "hw") >= lut4_hw
    assert panel.reduction("lut-4", "hw") > panel.reduction("lut-4", "none")
    assert panel.reduction("lut-4") >= panel.reduction("lut-2")
    benchmark.extra_info["lut4_hw_reduction"] = lut4_hw
    benchmark.extra_info["paper_value"] = 0.17


def test_figure4_synthetic_fpau(benchmark):
    panel = run_once(
        benchmark,
        lambda: run_figure4_synthetic(FUClass.FPAU, cycles=CYCLES))
    record(benchmark, "Figure 4(b), calibrated synthetic: FPAU",
           render_figure4(panel, title="Figure 4(b) on paper-calibrated"
                                       " operand statistics"))

    lut4_hw = panel.reduction("lut-4", "hw")
    # the paper's headline: 18% for the 4-bit LUT; our calibrated run
    # lands in the same band
    assert lut4_hw == pytest.approx(0.18, abs=0.06)
    # swapping adds almost nothing for the FPAU
    assert abs(panel.reduction("lut-4", "hw")
               - panel.reduction("lut-4", "none")) < 0.03
    # insensitive to vector width (rare multi-issue, Table 2)
    assert abs(panel.reduction("lut-8") - panel.reduction("lut-4")) < 0.03
    benchmark.extra_info["lut4_hw_reduction"] = lut4_hw
    benchmark.extra_info["paper_value"] = 0.18
