"""Ablation: does the branch predictor change the steering result?

The issue stream (and thus every power number) depends on speculation
depth.  This bench runs the IALU experiment under the bimodal predictor
(SimpleScalar's default, used for the headline numbers) and under
gshare, and checks the steering reduction is robust to the choice.
"""

from conftest import record, run_once

from repro.core import make_policy, paper_statistics
from repro.core.steering import OriginalPolicy, PolicyEvaluator
from repro.cpu.config import MachineConfig
from repro.cpu.simulator import Simulator
from repro.isa.instructions import FUClass
from repro.workloads import integer_suite


def test_ablation_branch_predictor(benchmark, bench_scale):
    stats = paper_statistics(FUClass.IALU)

    def run_with(kind):
        config = MachineConfig(branch_predictor=kind)
        lut_bits = 0
        fcfs_bits = 0
        mispredicts = 0
        lookups = 0
        for load in integer_suite():
            lut = PolicyEvaluator(FUClass.IALU, 4,
                                  make_policy("lut-4", FUClass.IALU, 4,
                                              stats=stats))
            fcfs = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
            sim = Simulator(load.build(bench_scale), config)
            sim.add_listener(lut)
            sim.add_listener(fcfs)
            result = sim.run()
            lut_bits += lut.totals().switched_bits
            fcfs_bits += fcfs.totals().switched_bits
            mispredicts += result.branch_mispredictions
            lookups += result.branch_lookups
        return {"reduction": 1 - lut_bits / fcfs_bits,
                "mispredict_rate": mispredicts / lookups}

    results = run_once(benchmark, lambda: {
        kind: run_with(kind) for kind in ("bimodal", "gshare")})
    text = "\n".join(
        f"{kind:8s} LUT-4 reduction {100 * data['reduction']:5.1f}%,"
        f" mispredict rate {100 * data['mispredict_rate']:5.1f}%"
        for kind, data in results.items())
    record(benchmark, "Ablation: branch predictor vs steering result",
           text)

    # the steering conclusion is robust to the predictor choice
    delta = abs(results["bimodal"]["reduction"]
                - results["gshare"]["reduction"])
    assert delta < 0.05
    assert all(data["reduction"] > 0 for data in results.values())
    benchmark.extra_info["results"] = {
        k: {m: round(v, 4) for m, v in d.items()}
        for k, d in results.items()}
