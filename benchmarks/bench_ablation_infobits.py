"""Ablation A1: information-bit definition.

The paper picks the sign bit (integers) and the OR of the bottom four
mantissa bits (floating point), arguing four bits misidentifies only
1/16 of full-precision numbers while staying fast.  This bench sweeps
the OR window (1/2/4/8/16 bits) and the integer top-bits majority
(1/2/4) on calibrated synthetic streams and reports the 1-bit-Hamming
steering reduction each scheme achieves.
"""

from conftest import record, run_once

from repro.core import (OriginalPolicy, PolicyEvaluator, make_fp_scheme,
                        make_int_scheme, paper_statistics)
from repro.core.steering import OneBitHammingPolicy
from repro.isa.instructions import FUClass
from repro.workloads import SyntheticStream

CYCLES = 6_000


def reduction_for(fu_class, scheme, stats, seed=13):
    steered = PolicyEvaluator(fu_class, 4, OneBitHammingPolicy(scheme=scheme))
    baseline = PolicyEvaluator(fu_class, 4, OriginalPolicy())
    # 'structured' operands have real sign-extension/trailing-zero shape,
    # which is what distinguishes the candidate information bits
    from repro.workloads.generators import OperandModel
    model = OperandModel(fu_class, mode="structured")
    for group in SyntheticStream(stats, operand_model=model,
                                 seed=seed).groups(CYCLES):
        steered(group)
        baseline(group)
    base = baseline.totals().switched_bits
    return 1.0 - steered.totals().switched_bits / base if base else 0.0


def test_ablation_info_bits(benchmark):
    def experiment():
        rows = []
        int_stats = paper_statistics(FUClass.IALU)
        for k in (1, 2, 4):
            scheme = make_int_scheme(k)
            rows.append(("int", scheme.name,
                         reduction_for(FUClass.IALU, scheme, int_stats)))
        fp_stats = paper_statistics(FUClass.FPAU)
        for k in (1, 2, 4, 8, 16):
            scheme = make_fp_scheme(k)
            rows.append(("fp", scheme.name,
                         reduction_for(FUClass.FPAU, scheme, fp_stats)))
        return rows

    rows = run_once(benchmark, experiment)
    text = "\n".join(f"{kind:4s} {name:16s} {100 * value:6.1f}%"
                     for kind, name, value in rows)
    record(benchmark, "Ablation A1: information-bit definition"
                      " (1-bit Ham reduction)", text)

    by_name = {(kind, name): value for kind, name, value in rows}
    # all candidate information bits must provide usable signal
    assert all(value > 0.0 for value in by_name.values())
    # the paper's choices are competitive: within a small margin of the
    # best candidate in each domain
    best_int = max(v for (k, _), v in by_name.items() if k == "int")
    best_fp = max(v for (k, _), v in by_name.items() if k == "fp")
    assert by_name[("int", "sign-bit")] >= best_int - 0.05
    assert by_name[("fp", "or-low-4")] >= best_fp - 0.05
    benchmark.extra_info["rows"] = {f"{k}/{n}": round(v, 4)
                                    for k, n, v in rows}
