"""Hybrid-scheme benches (section 3's "improvements will be additive").

Two hybrids the paper sketches with related work:

* steering on partially guarded FUs (Choi et al. [8]) — guard savings
  and steering savings should compose;
* criticality-steered heterogeneous modules (Seng et al. [19]) —
  case steering within speed classes harvests both effects.
"""

from conftest import record, run_once

from repro.core import (GuardedFUPowerModel, HeterogeneousPowerModel,
                        OriginalPolicy, PolicyEvaluator, build_lut,
                        paper_statistics, scheme_for, standard_variants)
from repro.core.hybrid import CriticalityAwareLUTPolicy
from repro.core.power import FUPowerModel
from repro.core.steering import LUTPolicy
from repro.cpu.simulator import Simulator
from repro.isa.instructions import FUClass
from repro.workloads import integer_suite


def test_hybrid_guarded_steering(benchmark, bench_scale):
    """Steering x guarding grid over the integer suite."""
    stats = paper_statistics(FUClass.IALU)
    scheme = scheme_for(FUClass.IALU)
    lut = build_lut(stats, 4, 4)

    def experiment():
        evaluators = {}
        for steer in (False, True):
            for guard in (False, True):
                policy = (LUTPolicy(lut=lut, scheme=scheme) if steer
                          else OriginalPolicy())
                evaluator = PolicyEvaluator(FUClass.IALU, 4, policy)
                if guard:
                    evaluator.power = GuardedFUPowerModel(FUClass.IALU, 4)
                evaluators[(steer, guard)] = evaluator
        for load in integer_suite():
            sim = Simulator(load.build(bench_scale))
            for evaluator in evaluators.values():
                sim.add_listener(evaluator)
            sim.run()
        return {key: e.power.switched_bits
                for key, e in evaluators.items()}

    bits = run_once(benchmark, experiment)
    base = bits[(False, False)]
    rows = []
    for (steer, guard), value in sorted(bits.items()):
        label = f"{'LUT-4' if steer else 'FCFS '} x " \
                f"{'guarded' if guard else 'plain  '}"
        rows.append(f"{label}: {value:10d} bits"
                    f"  ({100 * (1 - value / base):+.1f}%)")
    record(benchmark, "Hybrid: steering x partially-guarded FUs (IALU)",
           "\n".join(rows))

    # each technique helps alone and the combination beats both
    assert bits[(True, False)] < base
    assert bits[(False, True)] < base
    assert bits[(True, True)] < bits[(True, False)]
    assert bits[(True, True)] < bits[(False, True)]
    benchmark.extra_info["combined_reduction"] = \
        1 - bits[(True, True)] / base


def test_hybrid_heterogeneous_modules(benchmark, bench_scale):
    """Criticality-aware steering on a 2-fast/2-slow pool."""
    stats = paper_statistics(FUClass.IALU)
    scheme = scheme_for(FUClass.IALU)
    lut = build_lut(stats, 4, 4)
    variants = standard_variants(4, 2, slow_energy=0.6)

    def experiment():
        hybrid = PolicyEvaluator(FUClass.IALU, 4, CriticalityAwareLUTPolicy(
            lut=lut, scheme=scheme, variants=variants))
        hybrid.power = HeterogeneousPowerModel(FUClass.IALU, variants)
        fcfs = PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy())
        fcfs.power = HeterogeneousPowerModel(FUClass.IALU, variants)
        homogeneous = PolicyEvaluator(FUClass.IALU, 4,
                                      LUTPolicy(lut=lut, scheme=scheme))
        for load in integer_suite():
            sim = Simulator(load.build(bench_scale))
            for evaluator in (hybrid, fcfs, homogeneous):
                sim.add_listener(evaluator)
            sim.run()
        return hybrid, fcfs, homogeneous

    hybrid, fcfs, homogeneous = run_once(benchmark, experiment)
    text = (f"FCFS on heterogeneous pool:   "
            f"{fcfs.power.weighted_energy:12.0f} weighted bit-units\n"
            f"criticality-aware case LUT:   "
            f"{hybrid.power.weighted_energy:12.0f} weighted bit-units"
            f"  ({100 * (1 - hybrid.power.weighted_energy / fcfs.power.weighted_energy):+.1f}%)\n"
            f"(homogeneous LUT-4 raw bits:  "
            f"{homogeneous.power.switched_bits:12d})")
    record(benchmark, "Hybrid: heterogeneous fast/slow modules (IALU)",
           text)

    assert hybrid.power.weighted_energy < fcfs.power.weighted_energy
    benchmark.extra_info["weighted_reduction"] = \
        1 - hybrid.power.weighted_energy / fcfs.power.weighted_energy
