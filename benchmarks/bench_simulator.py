"""Infrastructure benchmark: cycle-simulator and golden-model throughput.

Not a paper experiment — this tracks the speed of the substrate every
other bench runs on, in retired instructions per second.
"""

from repro.cpu.golden import run_program
from repro.cpu.simulator import Simulator
from repro.workloads import workload


def test_out_of_order_throughput(benchmark):
    program = workload("ijpeg").build(1)

    def run():
        return Simulator(program).run()

    result = benchmark(run)
    benchmark.extra_info["retired_instructions"] = \
        result.retired_instructions
    benchmark.extra_info["ipc"] = round(result.ipc, 3)
    assert result.retired_instructions > 10_000


def test_golden_model_throughput(benchmark):
    program = workload("ijpeg").build(1)
    result = benchmark(lambda: run_program(program))
    benchmark.extra_info["instructions"] = result.instructions
    assert result.halted


def test_assembler_throughput(benchmark):
    load = workload("go")
    source = load.build_source(2)
    from repro.isa.assembler import assemble
    program = benchmark(lambda: assemble(source))
    assert len(program) > 50
