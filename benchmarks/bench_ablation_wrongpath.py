"""Ablation: does wrong-path (squashed) traffic change the result?

The routing hardware sees every issued operation, including those later
squashed on a branch misprediction — that is what the simulator models
and what the main experiments measure.  This ablation replays stored
traces with the squashed operations filtered out and compares the
steering reductions, quantifying how much wrong-path pollution matters
to the paper's numbers.
"""

from conftest import record, run_once

from repro.core import make_policy, paper_statistics
from repro.core.steering import OriginalPolicy, PolicyEvaluator
from repro.cpu import Simulator, TraceCollector
from repro.isa.instructions import FUClass
from repro.workloads import integer_suite


def test_ablation_wrong_path(benchmark, bench_scale):
    stats = paper_statistics(FUClass.IALU)

    def experiment():
        # capture traces once (with retroactive wrong-path marks)
        traces = []
        squashed = 0
        total = 0
        for load in integer_suite():
            collector = TraceCollector([FUClass.IALU])
            sim = Simulator(load.build(bench_scale))
            sim.add_listener(collector)
            sim.run()
            traces.append(collector.groups)
            squashed += sum(1 for g in collector.groups
                            for op in g.ops if op.speculative)
            total += collector.op_count()
        # evaluate with and without squashed ops
        bits = {}
        for include in (True, False):
            evaluators = {
                "lut-4": PolicyEvaluator(
                    FUClass.IALU, 4,
                    make_policy("lut-4", FUClass.IALU, 4, stats=stats),
                    include_speculative=include),
                "original": PolicyEvaluator(FUClass.IALU, 4,
                                            OriginalPolicy(),
                                            include_speculative=include),
            }
            for groups in traces:
                for group in groups:
                    for evaluator in evaluators.values():
                        evaluator(group)
            reduction = 1 - (evaluators["lut-4"].totals().switched_bits
                             / evaluators["original"].totals().switched_bits)
            bits[include] = reduction
        return bits, squashed, total

    bits, squashed, total = run_once(benchmark, experiment)
    text = (f"wrong-path operations: {squashed}/{total}"
            f" ({100 * squashed / total:.1f}% of issued IALU ops)\n"
            f"LUT-4 reduction including wrong path: {100 * bits[True]:.1f}%\n"
            f"LUT-4 reduction, correct path only:  {100 * bits[False]:.1f}%")
    record(benchmark, "Ablation: wrong-path traffic and steering",
           text)

    assert squashed > 0
    # wrong-path pollution shifts the result only marginally
    assert abs(bits[True] - bits[False]) < 0.05
    benchmark.extra_info["wrong_path_fraction"] = squashed / total
    benchmark.extra_info["delta"] = bits[True] - bits[False]
