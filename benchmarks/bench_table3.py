"""Table 3 reproduction: operand bit patterns at the multipliers."""

from conftest import record, run_once

from repro.analysis.multiplier import run_multiplier_experiment
from repro.analysis.report import render_table3
from repro.isa.instructions import FUClass


def test_table3(benchmark, bench_scale):
    results = run_once(
        benchmark, lambda: run_multiplier_experiment(scale=bench_scale))
    record(benchmark, "Table 3: bit patterns in multiplication data"
                      " (measured vs paper)", render_table3(results))

    imult = results[FUClass.IMULT]
    fpmult = results[FUClass.FPMULT]
    # the paper's shape: integer multiplications are dominated by case
    # 00 (93.8%), FP multiplications spread across the cases with a
    # meaningful swappable 01 population (15.5%)
    assert imult.case_fraction(0b00) > 0.5
    assert fpmult.case_fraction(0b01) > 0.02
    assert fpmult.swappable_01_fraction > 0.0
    benchmark.extra_info["imult_case00"] = imult.case_fraction(0b00)
    benchmark.extra_info["fpmult_swappable_01"] = \
        fpmult.swappable_01_fraction
