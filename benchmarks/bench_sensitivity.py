"""Profile-input sensitivity bench (section 4.4's compiler caveat).

Compiler swap decisions are trained on one input (scale) and applied to
another; the paper warns "performance will vary somewhat for different
input patterns."  The transfer penalty — self-profiled minus
cross-profiled reduction — quantifies that variation per workload.
"""

from conftest import record, run_once

from repro.analysis.sensitivity import run_sensitivity_suite
from repro.isa.instructions import FUClass


def test_profile_sensitivity(benchmark):
    results = run_once(
        benchmark,
        lambda: run_sensitivity_suite(FUClass.IALU,
                                      names=["cc1", "m88ksim", "perl",
                                             "compress"],
                                      train_scale=1, test_scale=2))
    lines = [f"{'workload':10s} {'steer only':>10} {'self-prof':>10}"
             f" {'cross-prof':>10} {'penalty':>8}"]
    for name, r in results.items():
        lines.append(f"{name:10s} {100 * r.unswapped_reduction:>9.1f}%"
                     f" {100 * r.self_profiled_reduction:>9.1f}%"
                     f" {100 * r.cross_profiled_reduction:>9.1f}%"
                     f" {100 * r.transfer_penalty:>7.2f}%")
    record(benchmark, "Compiler swapping: profile-input sensitivity"
                      " (IALU, LUT-4 + HW swap)", "\n".join(lines))

    assert results, "no transferable workloads"
    for name, r in results.items():
        # transfer degrades gracefully, never catastrophically
        assert abs(r.transfer_penalty) < 0.10, name
    benchmark.extra_info["penalties"] = {
        name: round(r.transfer_penalty, 4) for name, r in results.items()}
