"""Figure 4(a) reproduction: IALU energy reduction grid.

Every scheme (Full Ham, 1-bit Ham, 8/4/2-bit LUT, Original) under no
swapping, hardware swapping, and hardware+compiler swapping, over the
SPEC95-analogue integer suite.  The paper quotes 17% for the 4-bit LUT
with hardware swapping and 26% with compiler swapping on top; absolute
numbers depend on the workload data, but the orderings must hold.
"""

from conftest import record, run_once

from repro.analysis.energy import run_figure4
from repro.analysis.report import render_figure4
from repro.isa.instructions import FUClass


def test_figure4_ialu(benchmark, bench_scale):
    panel = run_once(
        benchmark,
        lambda: run_figure4(FUClass.IALU, scale=bench_scale,
                            swap_modes=("none", "hw", "compiler",
                                        "hw+compiler")))
    record(benchmark, "Figure 4(a): IALU energy reduction",
           render_figure4(panel))

    # scheme ordering: cost/knowledge buys reduction, Original gains 0
    assert panel.reduction("full-ham") >= panel.reduction("1bit-ham") - 0.02
    assert panel.reduction("1bit-ham") >= panel.reduction("lut-8") - 0.02
    assert panel.reduction("lut-8") >= panel.reduction("lut-4") - 0.02
    assert panel.reduction("lut-4") >= panel.reduction("lut-2") - 0.02
    assert panel.reduction("lut-2") > 0.0
    assert panel.reduction("original") == 0.0

    # hardware swapping helps integer steering (section 4.4)
    assert panel.reduction("lut-4", "hw") > panel.reduction("lut-4", "none")
    # on plain FCFS, swapping is roughly neutral (the paper's small
    # "Original" gain); allow small negative noise on kernel data
    assert panel.reduction("original", "hw") >= -0.02
    assert panel.reduction("original", "hw+compiler") >= -0.02

    for scheme in ("full-ham", "1bit-ham", "lut-4", "lut-2"):
        benchmark.extra_info[scheme] = {
            mode: round(panel.reduction(scheme, mode), 4)
            for mode in ("none", "hw", "hw+compiler")}
