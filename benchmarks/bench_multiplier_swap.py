"""Section 4.4 reproduction: multiplier operand swapping.

The paper reports the *potential* for multiplier swapping (15.5% of FP
multiplications can move from case 01 to 10) but no power numbers,
lacking a Booth model.  This bench reports both the potential and the
partial-product add reductions under the library's shift-add and Booth
activity models.
"""

from conftest import record, run_once

from repro.analysis.multiplier import run_multiplier_experiment
from repro.analysis.report import render_multiplier_swapping
from repro.isa.instructions import FUClass


def test_multiplier_swapping(benchmark, bench_scale):
    results = run_once(
        benchmark, lambda: run_multiplier_experiment(scale=bench_scale))
    record(benchmark, "Multiplier operand swapping (section 4.4)",
           render_multiplier_swapping(results))

    fpmult = results[FUClass.FPMULT]
    imult = results[FUClass.IMULT]
    # a meaningful population of FP multiplies is swappable 01 -> 10
    assert fpmult.swappable_01_fraction > 0.0
    # exact-width swapping reduces Booth partial products on both units
    assert fpmult.adds_reduction("booth") >= 0.0
    assert imult.adds_reduction("booth") >= 0.0
    # and the Booth-aware comparator is at least as good as info bits
    assert fpmult.adds_reduction("booth") \
        >= fpmult.adds_reduction("info-bit") - 1e-9

    benchmark.extra_info["fpmult_swappable_01"] = \
        fpmult.swappable_01_fraction
    benchmark.extra_info["paper_fpmult_swappable_01"] = 0.155
    benchmark.extra_info["fpmult_booth_adds_reduction"] = \
        fpmult.adds_reduction("booth")
