"""Ablation A4: which case should hardware swapping target?

The paper's rule picks the mixed case with the lower non-commutative
frequency (01 for the IALU, 10 for the FPAU, per Table 1).  This bench
evaluates both choices on calibrated streams under the 4-bit LUT and
confirms the rule's choice is the better (or equal) one.
"""

from conftest import record, run_once

from repro.core import (HardwareSwapper, PolicyEvaluator, build_lut,
                        choose_swap_case, paper_statistics, scheme_for)
from repro.core.steering import LUTPolicy, OriginalPolicy
from repro.isa.instructions import FUClass
from repro.workloads import SyntheticStream

CYCLES = 8_000


def reduction_with_swap_case(fu_class, stats, swap_case, seed=31):
    scheme = scheme_for(fu_class)
    lut = build_lut(stats, 4, 4)
    steered = PolicyEvaluator(fu_class, 4, LUTPolicy(lut=lut, scheme=scheme),
                              pre_swapper=HardwareSwapper(scheme, swap_case))
    baseline = PolicyEvaluator(fu_class, 4, OriginalPolicy())
    for group in SyntheticStream(stats, seed=seed).groups(CYCLES):
        steered(group)
        baseline(group)
    base = baseline.totals().switched_bits
    return 1.0 - steered.totals().switched_bits / base if base else 0.0


def test_ablation_swap_case(benchmark):
    def experiment():
        rows = {}
        for fu_class in (FUClass.IALU, FUClass.FPAU):
            stats = paper_statistics(fu_class)
            rows[fu_class] = {
                "rule": choose_swap_case(stats),
                0b01: reduction_with_swap_case(fu_class, stats, 0b01),
                0b10: reduction_with_swap_case(fu_class, stats, 0b10),
            }
        return rows

    rows = run_once(benchmark, experiment)
    lines = []
    for fu_class, data in rows.items():
        lines.append(f"{fu_class.value.upper()}: swap 01 ->"
                     f" {100 * data[0b01]:5.1f}%,  swap 10 ->"
                     f" {100 * data[0b10]:5.1f}%"
                     f"   (paper rule picks {data['rule']:02b})")
    record(benchmark, "Ablation A4: hardware swap-case choice"
                      " (4-bit LUT + swapping)", "\n".join(lines))

    for fu_class, data in rows.items():
        chosen = data[data["rule"]]
        other = data[0b01 if data["rule"] == 0b10 else 0b10]
        # the paper's selection rule never picks the worse case (allow
        # a small noise margin on the synthetic stream)
        assert chosen >= other - 0.02, fu_class
    # and the rule reproduces the paper's published directions
    assert rows[FUClass.IALU]["rule"] == 0b01
    assert rows[FUClass.FPAU]["rule"] == 0b10
    benchmark.extra_info["ialu"] = {f"{k:02b}" if isinstance(k, int) else k:
                                    v for k, v in rows[FUClass.IALU].items()}
