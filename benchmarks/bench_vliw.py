"""Section 2's dynamic-vs-static claim.

"Because superscalars allow out-of-order execution, a good assignment
strategy should be dynamic.  The case is less clear for VLIW
processors."  This bench compares a compile-time (VLIW-style) module
assignment — each static instruction fixed to a module by its profiled
dominant case — against the dynamic LUT and the FCFS baseline on the
integer suite.
"""

from conftest import record, run_once

from repro.compiler.static_assignment import build_static_policy
from repro.core import (OriginalPolicy, PolicyEvaluator, build_lut,
                        paper_statistics, scheme_for)
from repro.core.steering import LUTPolicy
from repro.cpu.simulator import Simulator
from repro.isa.instructions import FUClass
from repro.workloads import integer_suite


def test_vliw_static_vs_dynamic(benchmark, bench_scale):
    stats = paper_statistics(FUClass.IALU)
    scheme = scheme_for(FUClass.IALU)
    lut = build_lut(stats, 4, 8)

    def experiment():
        totals = {"fcfs": 0, "static": 0, "dynamic": 0}
        for load in integer_suite():
            program = load.build(bench_scale)
            static_policy = build_static_policy(program, FUClass.IALU,
                                                stats, 4, scheme=scheme)
            evaluators = {
                "fcfs": PolicyEvaluator(FUClass.IALU, 4, OriginalPolicy()),
                "static": PolicyEvaluator(FUClass.IALU, 4, static_policy),
                "dynamic": PolicyEvaluator(
                    FUClass.IALU, 4, LUTPolicy(lut=lut, scheme=scheme)),
            }
            sim = Simulator(program)
            for evaluator in evaluators.values():
                sim.add_listener(evaluator)
            sim.run()
            for name, evaluator in evaluators.items():
                totals[name] += evaluator.totals().switched_bits
        return totals

    totals = run_once(benchmark, experiment)
    base = totals["fcfs"]
    text = "\n".join(
        f"{name:8s} {bits:12d} bits  ({100 * (1 - bits / base):+.1f}%)"
        for name, bits in totals.items())
    record(benchmark, "VLIW-style static assignment vs dynamic LUT (IALU)",
           text)

    # static profiling helps over FCFS, but dynamic assignment wins —
    # the paper's section 2 intuition
    assert totals["static"] < base
    assert totals["dynamic"] <= totals["static"] * 1.02
    benchmark.extra_info["static_reduction"] = 1 - totals["static"] / base
    benchmark.extra_info["dynamic_reduction"] = 1 - totals["dynamic"] / base
