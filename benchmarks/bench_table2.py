"""Table 2 reproduction: modules used per busy cycle (IALU and FPAU)."""

from conftest import record, run_once

from repro.analysis.module_usage import ModuleUsageCollector
from repro.analysis.report import render_table2
from repro.cpu.simulator import Simulator
from repro.isa.instructions import FUClass
from repro.workloads import all_workloads


def test_table2(benchmark, bench_scale):
    def experiment():
        usage = ModuleUsageCollector([FUClass.IALU, FUClass.FPAU])
        for load in all_workloads():
            sim = Simulator(load.build(bench_scale))
            sim.add_listener(usage)
            sim.run()
        return usage

    usage = run_once(benchmark, experiment)
    record(benchmark, "Table 2: modules used per busy cycle"
                      " (measured vs paper)", render_table2(usage))

    ialu = usage.distribution(FUClass.IALU)
    fpau = usage.distribution(FUClass.FPAU)
    # the paper's shape: the FPAU is much less heavily loaded per cycle
    # than the IALU (90.2% single-issue vs 40.3%)
    assert fpau[1] > ialu[1]
    assert fpau[1] > 0.7
    assert ialu[2] + ialu[3] + ialu[4] > 0.3
    benchmark.extra_info["ialu_single_issue"] = ialu[1]
    benchmark.extra_info["fpau_single_issue"] = fpau[1]
