"""Figure 1 reproduction: the motivating 3-way routing example.

The paper's alternative routing of cycle 2's two operations saves 57%
of the switched input bits versus default (in-order) routing.  The
optimal assignment found by the library's Figure 2 machinery brackets
that number: at least as good with router swapping enabled, somewhat
less without.
"""

from conftest import record, run_once

from repro.analysis.figure1 import evaluate_figure1


def test_figure1(benchmark):
    result = run_once(benchmark, evaluate_figure1)
    no_swap = evaluate_figure1(allow_swap=False)
    text = (f"default routing energy:       {result.default_energy} bits\n"
            f"optimal routing (with swap):  {result.optimal_energy} bits"
            f"  -> {100 * result.saving:.1f}% saving\n"
            f"optimal routing (no swap):    {no_swap.optimal_energy} bits"
            f"  -> {100 * no_swap.saving:.1f}% saving\n"
            f"paper's alternative routing:  57% saving")
    record(benchmark, "Figure 1: alternative data routes, 3-way machine",
           text)

    assert result.saving >= 0.57  # optimum at least matches the paper
    assert 0.0 < no_swap.saving < result.saving
    benchmark.extra_info["saving_with_swap"] = result.saving
    benchmark.extra_info["saving_no_swap"] = no_swap.saving
