"""Ablation A6: home-allocation strategy.

The paper allocates module homes informally (three IALU modules for
case 00; one FPAU module per case).  The library optimises allocation
against a sequence-aware expected-cost objective.  This bench compares
the two on calibrated streams — the optimised allocation must never be
worse, and the paper's own examples are recovered as special cases.
"""

from conftest import record, run_once

from repro.core import (OriginalPolicy, PolicyEvaluator, allocate_homes,
                        allocate_homes_paper_rule, build_lut,
                        paper_statistics, scheme_for)
from repro.core.steering import LUTPolicy
from repro.isa.instructions import FUClass
from repro.workloads import SyntheticStream

CYCLES = 8_000


def reduction_with_homes(fu_class, stats, homes, seed=17):
    scheme = scheme_for(fu_class)
    lut = build_lut(stats, 4, 4, homes=homes)
    steered = PolicyEvaluator(fu_class, 4, LUTPolicy(lut=lut, scheme=scheme))
    baseline = PolicyEvaluator(fu_class, 4, OriginalPolicy())
    for group in SyntheticStream(stats, seed=seed).groups(CYCLES):
        steered(group)
        baseline(group)
    base = baseline.totals().switched_bits
    return 1.0 - steered.totals().switched_bits / base if base else 0.0


def test_ablation_home_allocation(benchmark):
    def experiment():
        rows = {}
        for fu_class in (FUClass.IALU, FUClass.FPAU):
            stats = paper_statistics(fu_class)
            optimised = allocate_homes(stats, 4)
            paper = allocate_homes_paper_rule(stats, 4)
            rows[fu_class] = {
                "optimised_homes": optimised,
                "paper_homes": paper,
                "optimised": reduction_with_homes(fu_class, stats, optimised),
                "paper": reduction_with_homes(fu_class, stats, paper),
            }
        return rows

    rows = run_once(benchmark, experiment)
    lines = []
    for fu_class, data in rows.items():
        homes_o = "/".join(f"{h:02b}" for h in data["optimised_homes"])
        homes_p = "/".join(f"{h:02b}" for h in data["paper_homes"])
        lines.append(f"{fu_class.value.upper()}: optimised [{homes_o}] ->"
                     f" {100 * data['optimised']:5.1f}%,"
                     f" paper rule [{homes_p}] ->"
                     f" {100 * data['paper']:5.1f}%")
    record(benchmark, "Ablation A6: home-allocation strategy"
                      " (4-bit LUT, no swapping)", "\n".join(lines))

    for fu_class, data in rows.items():
        assert data["optimised"] >= data["paper"] - 0.02, fu_class
    # the paper's FPAU reasoning (one module per case) is also what the
    # optimiser chooses, so the two coincide there
    assert rows[FUClass.FPAU]["optimised_homes"] \
        == rows[FUClass.FPAU]["paper_homes"]
    benchmark.extra_info["results"] = {
        fu.value: {"optimised": round(d["optimised"], 4),
                   "paper": round(d["paper"], 4)}
        for fu, d in rows.items()}
