"""Section 4.2 derived value statistics, measured over the suite.

The paper justifies its information bits with four derived numbers
(91.2% / 63.7% for integers, 42.4% / 86.5% for floating point); this
bench measures the same conditional statistics from the kernel suite
and checks the qualitative claims.
"""

from conftest import record, run_once

from repro.analysis.value_stats import ValueStatsCollector, render_value_stats
from repro.cpu.simulator import Simulator
from repro.isa.instructions import FUClass
from repro.workloads import all_workloads


def test_value_statistics(benchmark, bench_scale):
    def experiment():
        int_stats = ValueStatsCollector(FUClass.IALU)
        fp_stats = ValueStatsCollector(FUClass.FPAU)
        for load in all_workloads():
            sim = Simulator(load.build(bench_scale))
            sim.add_listener(int_stats)
            sim.add_listener(fp_stats)
            sim.run()
        return int_stats, fp_stats

    int_stats, fp_stats = run_once(benchmark, experiment)
    record(benchmark, "Section 4.2: derived value statistics",
           render_value_stats(int_stats, fp_stats))

    # the information bits must be strong predictors (paper: 91.2% and
    # 63.7% for integers; 86.5% for FP info bit 0) — decisively above
    # the 50% chance line on our data too
    assert int_stats.match_probability(0) > 0.75
    assert int_stats.match_probability(1) > 0.55
    assert fp_stats.match_probability(0) > 0.6
    # a substantial fraction of FP operands genuinely trail zeros
    assert fp_stats.fp_genuine_trailing_zero_fraction() > 0.1
    benchmark.extra_info["int_p0"] = int_stats.match_probability(0)
    benchmark.extra_info["int_p1"] = int_stats.match_probability(1)
    benchmark.extra_info["fp_low4_zero"] = fp_stats.info_bit_fraction(0)
    benchmark.extra_info["fp_p0"] = fp_stats.match_probability(0)
