"""Power-density side effect of steering: per-module activity.

The paper motivates FU power work via hot-spot risk.  Steering lowers
*total* switching but concentrates coherent traffic on home modules —
this bench quantifies how the hottest module's share of switching
changes, the number a floorplanner would ask for.
"""

from conftest import record, run_once

from repro.analysis.module_load import (attach_load_tracking, module_load,
                                        render_module_load)
from repro.core import make_policy, paper_statistics
from repro.core.steering import OriginalPolicy, PolicyEvaluator
from repro.cpu.simulator import Simulator
from repro.isa.instructions import FUClass
from repro.workloads import integer_suite


def test_module_load_distribution(benchmark, bench_scale):
    stats = paper_statistics(FUClass.IALU)

    def experiment():
        evaluators = {
            "original": attach_load_tracking(PolicyEvaluator(
                FUClass.IALU, 4, OriginalPolicy())),
            "lut-4": attach_load_tracking(PolicyEvaluator(
                FUClass.IALU, 4,
                make_policy("lut-4", FUClass.IALU, 4, stats=stats))),
            "full-ham": attach_load_tracking(PolicyEvaluator(
                FUClass.IALU, 4,
                make_policy("full-ham", FUClass.IALU, 4))),
        }
        for load in integer_suite():
            sim = Simulator(load.build(bench_scale))
            for evaluator in evaluators.values():
                sim.add_listener(evaluator)
            sim.run()
        return {name: module_load(e) for name, e in evaluators.items()}

    loads = run_once(benchmark, experiment)
    record(benchmark, "Per-module activity under different routers",
           render_module_load(list(loads.values())))

    # the same operations flow through every router
    totals = {load.total_operations for load in loads.values()}
    assert len(totals) == 1
    # steering reduces total switching
    assert loads["lut-4"].total_bits < loads["original"].total_bits
    # no module is ever fully idle under the LUT (homes cover all cases)
    assert all(ops > 0 for ops in loads["lut-4"].operations)
    benchmark.extra_info["hotspot"] = {
        name: round(load.max_bits_share, 4) for name, load in loads.items()}
