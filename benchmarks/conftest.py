"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
stores the rendered rows in ``benchmark.extra_info`` (also printed when
pytest runs with ``-s``), so the harness output can be compared against
the paper side by side.  Timing uses a single round: these are
experiment drivers, not microbenchmarks.
"""

import pytest


def record(benchmark, title, text):
    """Attach a rendered table to the benchmark and print it."""
    benchmark.extra_info["table"] = text
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n")


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def bench_scale():
    """Workload scale used by simulator-driven benchmarks."""
    return 1
